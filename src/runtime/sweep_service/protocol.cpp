#include "runtime/sweep_service/protocol.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "runtime/bench_json.hpp"
#include "util/sha256.hpp"

namespace parbounds::service {

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool is_ws(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// Strict single-message scanner. Every helper returns false after
/// recording the first error with its byte offset; callers propagate.
struct Cursor {
  std::string_view s;
  std::size_t pos = 0;
  std::string err;

  bool fail(const std::string& m) {
    if (err.empty()) err = m + " at byte " + std::to_string(pos);
    return false;
  }
  void ws() {
    while (pos < s.size() && is_ws(s[pos])) ++pos;
  }
  bool expect(char c) {
    ws();
    if (pos >= s.size() || s[pos] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }
  bool peek_is(char c) {
    ws();
    return pos < s.size() && s[pos] == c;
  }
  bool at_end() {
    ws();
    return pos == s.size();
  }

  bool hex4(unsigned& out) {
    out = 0;
    for (unsigned i = 0; i < 4; ++i) {
      if (pos >= s.size()) return fail("truncated \\u escape");
      const char c = s[pos++];
      unsigned digit = 0;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A') + 10;
      else return fail("bad hex digit in \\u escape");
      out = out * 16 + digit;
    }
    return true;
  }

  bool string_value(std::string& out) {
    out.clear();
    if (!expect('"')) return false;
    while (pos < s.size() && s[pos] != '"') {
      char c = s[pos];
      if (c == '\\') {
        ++pos;
        if (pos >= s.size()) return fail("truncated escape");
        switch (s[pos]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            ++pos;
            unsigned code = 0;
            if (!hex4(code)) return false;
            if (code > 0xFF)
              return fail("\\u escape above 0x00ff is not supported");
            out += static_cast<char>(code);
            continue;  // hex4 already advanced pos
          }
          default: return fail("unknown escape");
        }
        ++pos;
      } else {
        out += c;
        ++pos;
      }
    }
    if (pos >= s.size()) return fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }

  bool u64_value(std::uint64_t& out) {
    ws();
    const std::size_t start = pos;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') ++pos;
    if (pos == start) return fail("expected unsigned integer");
    const auto res = std::from_chars(s.data() + start, s.data() + pos, out);
    if (res.ec != std::errc() || res.ptr != s.data() + pos)
      return fail("unsigned integer out of range");
    return true;
  }

  bool double_value(double& out) {
    ws();
    const std::size_t start = pos;
    while (pos < s.size() &&
           (s[pos] == '-' || s[pos] == '+' || s[pos] == '.' ||
            s[pos] == 'e' || s[pos] == 'E' ||
            (s[pos] >= '0' && s[pos] <= '9')))
      ++pos;
    if (pos == start) return fail("expected number");
    const auto res = std::from_chars(s.data() + start, s.data() + pos, out);
    if (res.ec != std::errc() || res.ptr != s.data() + pos)
      return fail("malformed number");
    return true;
  }

  bool bool_value(bool& out) {
    ws();
    if (s.compare(pos, 4, "true") == 0) {
      out = true;
      pos += 4;
      return true;
    }
    if (s.compare(pos, 5, "false") == 0) {
      out = false;
      pos += 5;
      return true;
    }
    return fail("expected boolean");
  }

  /// Copy one balanced JSON value verbatim (used for the opaque stats
  /// block). Tracks string state so braces inside strings don't count.
  bool raw_value(std::string& out) {
    ws();
    const std::size_t start = pos;
    int depth = 0;
    bool in_string = false;
    while (pos < s.size()) {
      const char c = s[pos];
      if (in_string) {
        if (c == '\\') {
          ++pos;
          if (pos >= s.size()) return fail("truncated escape");
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;  // closes the enclosing container
        --depth;
      } else if (depth == 0 && (c == ',' || is_ws(c))) {
        break;
      }
      ++pos;
      if (depth == 0 && !in_string && pos > start) {
        const char last = s[pos - 1];
        if (last == '}' || last == ']' || last == '"') break;
      }
    }
    if (depth != 0 || in_string) return fail("unbalanced value");
    if (pos == start) return fail("expected value");
    out.assign(s.substr(start, pos - start));
    return true;
  }
};

/// Record a key sighting; duplicates are decode errors.
bool mark_seen(Cursor& c, bool& flag, const std::string& key) {
  if (flag) return c.fail("duplicate key '" + key + "'");
  flag = true;
  return true;
}

bool parse_params(Cursor& c, runtime::ServiceSpec& spec) {
  if (!c.expect('{')) return false;
  if (c.peek_is('}')) {
    ++c.pos;
    return true;
  }
  for (;;) {
    std::string key;
    if (!c.string_value(key)) return false;
    for (const auto& [existing, value] : spec.params)
      if (existing == key) return c.fail("duplicate param '" + key + "'");
    if (!c.expect(':')) return false;
    std::uint64_t v = 0;
    if (!c.u64_value(v)) return false;
    spec.params.emplace_back(std::move(key), v);
    if (c.peek_is(',')) {
      ++c.pos;
      continue;
    }
    return c.expect('}');
  }
}

bool finish(Cursor& c, std::string& err, bool ok) {
  if (ok && !c.at_end()) ok = c.fail("trailing bytes after message");
  if (!ok) err = c.err.empty() ? "malformed message" : c.err;
  return ok;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::Run: return "run";
    case Op::Cell: return "cell";
    case Op::Stats: return "stats";
    case Op::Ping: return "ping";
    case Op::Shutdown: return "shutdown";
  }
  return "?";
}

const char* status_name(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::Retry: return "retry";
    case Status::Error: return "error";
  }
  return "?";
}

std::string encode_request(const Request& req) {
  std::string out = "{\"id\":" + std::to_string(req.id) + ",\"op\":\"" +
                    op_name(req.op) + "\"";
  if (req.op == Op::Run || req.op == Op::Cell) {
    out += ",\"engine\":\"" + runtime::json_escape(req.spec.engine) + "\"";
    out +=
        ",\"workload\":\"" + runtime::json_escape(req.spec.workload) + "\"";
    if (!req.spec.params.empty()) {
      out += ",\"params\":{";
      bool first = true;
      for (const auto& [key, value] : req.spec.params) {
        if (!first) out += ',';
        first = false;
        out += "\"" + runtime::json_escape(key) +
               "\":" + std::to_string(value);
      }
      out += "}";
    }
    out += ",\"seed\":" + std::to_string(req.seed);
    if (req.op == Op::Cell) {
      out += ",\"trial0\":" + std::to_string(req.trial0);
      out += ",\"trials\":" + std::to_string(req.trials);
    }
  }
  out += "}";
  return out;
}

std::string encode_response(const Response& resp) {
  std::string out = "{\"id\":" + std::to_string(resp.id) + ",\"status\":\"" +
                    status_name(resp.status) + "\"";
  if (resp.has_cost) {
    out += ",\"cached\":";
    out += resp.cached ? "true" : "false";
    out += ",\"cost\":" + num(resp.cost);
  }
  if (!resp.costs.empty()) {
    if (!resp.has_cost) {
      out += ",\"cached\":";
      out += resp.cached ? "true" : "false";
    }
    out += ",\"costs\":[";
    for (std::size_t i = 0; i < resp.costs.size(); ++i) {
      if (i > 0) out += ',';
      out += num(resp.costs[i]);
    }
    out += "]";
  }
  if (!resp.telemetry.empty())
    out += ",\"telemetry\":\"" + runtime::json_escape(resp.telemetry) + "\"";
  if (!resp.stats_json.empty()) out += ",\"stats\":" + resp.stats_json;
  if (resp.status == Status::Error)
    out += ",\"error\":\"" + runtime::json_escape(resp.error) + "\"";
  out += "}";
  return out;
}

bool decode_request(std::string_view payload, Request& out,
                    std::string& err) {
  Cursor c{payload, 0, {}};
  out = Request{};
  bool saw_id = false, saw_op = false, saw_engine = false,
       saw_workload = false, saw_params = false, saw_seed = false,
       saw_trial0 = false, saw_trials = false;
  std::string op_text;

  bool ok = c.expect('{');
  if (ok && c.peek_is('}')) {
    ++c.pos;
  } else {
    while (ok) {
      std::string key;
      ok = c.string_value(key) && c.expect(':');
      if (!ok) break;
      if (key == "id") {
        ok = mark_seen(c, saw_id, key) && c.u64_value(out.id);
      } else if (key == "op") {
        ok = mark_seen(c, saw_op, key) && c.string_value(op_text);
      } else if (key == "engine") {
        ok = mark_seen(c, saw_engine, key) && c.string_value(out.spec.engine);
      } else if (key == "workload") {
        ok = mark_seen(c, saw_workload, key) &&
             c.string_value(out.spec.workload);
      } else if (key == "params") {
        ok = mark_seen(c, saw_params, key) && parse_params(c, out.spec);
      } else if (key == "seed") {
        ok = mark_seen(c, saw_seed, key) && c.u64_value(out.seed);
      } else if (key == "trial0") {
        ok = mark_seen(c, saw_trial0, key) && c.u64_value(out.trial0);
      } else if (key == "trials") {
        ok = mark_seen(c, saw_trials, key) && c.u64_value(out.trials);
      } else {
        ok = c.fail("unknown request key '" + key + "'");
      }
      if (!ok) break;
      if (c.peek_is(',')) {
        ++c.pos;
        continue;
      }
      ok = c.expect('}');
      break;
    }
  }

  if (ok && !saw_id) ok = c.fail("missing required key 'id'");
  if (ok && !saw_op) ok = c.fail("missing required key 'op'");
  if (ok) {
    if (op_text == "run") out.op = Op::Run;
    else if (op_text == "cell") out.op = Op::Cell;
    else if (op_text == "stats") out.op = Op::Stats;
    else if (op_text == "ping") out.op = Op::Ping;
    else if (op_text == "shutdown") out.op = Op::Shutdown;
    else ok = c.fail("unknown op '" + op_text + "'");
  }
  if (ok && (out.op == Op::Run || out.op == Op::Cell)) {
    const std::string what = op_name(out.op);
    if (!saw_engine) ok = c.fail(what + " request missing 'engine'");
    else if (!saw_workload) ok = c.fail(what + " request missing 'workload'");
    else if (!saw_seed) ok = c.fail(what + " request missing 'seed'");
  }
  if (ok && out.op == Op::Cell) {
    if (!saw_trial0) ok = c.fail("cell request missing 'trial0'");
    else if (!saw_trials) ok = c.fail("cell request missing 'trials'");
    else if (out.trials == 0) ok = c.fail("cell request needs trials >= 1");
  }
  if (ok && out.op != Op::Cell && (saw_trial0 || saw_trials))
    ok = c.fail(std::string("op '") + op_name(out.op) +
                "' takes no cell fields");
  if (ok && out.op != Op::Run && out.op != Op::Cell &&
      (saw_engine || saw_workload || saw_params || saw_seed))
    ok = c.fail(std::string("op '") + op_name(out.op) +
                "' takes no run fields");
  return finish(c, err, ok);
}

bool decode_response(std::string_view payload, Response& out,
                     std::string& err) {
  Cursor c{payload, 0, {}};
  out = Response{};
  bool saw_id = false, saw_status = false, saw_cached = false,
       saw_cost = false, saw_costs = false, saw_telemetry = false,
       saw_stats = false, saw_error = false;
  std::string status_text;

  bool ok = c.expect('{');
  if (ok && c.peek_is('}')) {
    ++c.pos;
  } else {
    while (ok) {
      std::string key;
      ok = c.string_value(key) && c.expect(':');
      if (!ok) break;
      if (key == "id") {
        ok = mark_seen(c, saw_id, key) && c.u64_value(out.id);
      } else if (key == "status") {
        ok = mark_seen(c, saw_status, key) && c.string_value(status_text);
      } else if (key == "cached") {
        ok = mark_seen(c, saw_cached, key) && c.bool_value(out.cached);
      } else if (key == "cost") {
        ok = mark_seen(c, saw_cost, key) && c.double_value(out.cost);
        out.has_cost = ok;
      } else if (key == "costs") {
        ok = mark_seen(c, saw_costs, key) && c.expect('[');
        while (ok) {
          double v = 0.0;
          ok = c.double_value(v);
          if (!ok) break;
          out.costs.push_back(v);
          if (c.peek_is(',')) {
            ++c.pos;
            continue;
          }
          ok = c.expect(']');
          break;
        }
      } else if (key == "telemetry") {
        ok = mark_seen(c, saw_telemetry, key) &&
             c.string_value(out.telemetry);
      } else if (key == "stats") {
        ok = mark_seen(c, saw_stats, key) && c.raw_value(out.stats_json);
        if (ok && (out.stats_json.empty() || out.stats_json[0] != '{'))
          ok = c.fail("'stats' must be an object");
      } else if (key == "error") {
        ok = mark_seen(c, saw_error, key) && c.string_value(out.error);
      } else {
        ok = c.fail("unknown response key '" + key + "'");
      }
      if (!ok) break;
      if (c.peek_is(',')) {
        ++c.pos;
        continue;
      }
      ok = c.expect('}');
      break;
    }
  }

  if (ok && !saw_id) ok = c.fail("missing required key 'id'");
  if (ok && !saw_status) ok = c.fail("missing required key 'status'");
  if (ok) {
    if (status_text == "ok") out.status = Status::Ok;
    else if (status_text == "retry") out.status = Status::Retry;
    else if (status_text == "error") out.status = Status::Error;
    else ok = c.fail("unknown status '" + status_text + "'");
  }
  if (ok && saw_cached && !saw_cost && !saw_costs)
    ok = c.fail("'cached' without 'cost' or 'costs'");
  if (ok && saw_cost && saw_costs)
    ok = c.fail("'cost' and 'costs' are mutually exclusive");
  if (ok && saw_telemetry && !saw_costs)
    ok = c.fail("'telemetry' without 'costs'");
  if (ok && out.status == Status::Error && !saw_error)
    ok = c.fail("error response missing 'error'");
  return finish(c, err, ok);
}

// ----- binary codec (wire v2) -----------------------------------------------

namespace {

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out += static_cast<char>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  out += static_cast<char>(v);
}

void put_u64le(std::string& out, std::uint64_t v) {
  for (unsigned i = 0; i < 8; ++i)
    out += static_cast<char>((v >> (8U * i)) & 0xFFU);
}

void put_f64le(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64le(out, bits);
}

void put_bytes(std::string& out, std::string_view b) {
  put_varint(out, b.size());
  out.append(b);
}

/// Strict forward-only reader over a binary payload. Every getter
/// records the first error with its byte offset and then fails fast;
/// truncation and overlong varints are typed errors, never reads past
/// the end.
struct BinReader {
  std::string_view s;
  std::size_t pos = 0;
  std::string err;

  bool fail(const std::string& m) {
    if (err.empty()) err = m + " at byte " + std::to_string(pos);
    return false;
  }
  bool get_u8(std::uint8_t& out) {
    if (pos >= s.size()) return fail("truncated message");
    out = static_cast<std::uint8_t>(s[pos++]);
    return true;
  }
  bool get_varint(std::uint64_t& out) {
    out = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (pos >= s.size()) return fail("truncated varint");
      const auto b = static_cast<std::uint8_t>(s[pos++]);
      if (shift == 63 && (b & 0x7E) != 0)
        return fail("varint overflows u64");
      out |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return true;
    }
    return fail("varint longer than 10 bytes");
  }
  bool get_u64le(std::uint64_t& out) {
    if (s.size() - pos < 8) return fail("truncated u64");
    out = 0;
    for (unsigned i = 0; i < 8; ++i)
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(s[pos + i]))
             << (8U * i);
    pos += 8;
    return true;
  }
  bool get_f64le(double& out) {
    std::uint64_t bits = 0;
    if (!get_u64le(bits)) return false;
    std::memcpy(&out, &bits, sizeof out);
    if (std::isnan(out)) return fail("NaN cost payload");
    return true;
  }
  bool get_bytes(std::string& out) {
    std::uint64_t n = 0;
    if (!get_varint(n)) return false;
    if (n > s.size() - pos) return fail("truncated bytes field");
    out.assign(s.substr(pos, static_cast<std::size_t>(n)));
    pos += static_cast<std::size_t>(n);
    return true;
  }
  bool at_end() const { return pos == s.size(); }
};

bool bin_finish(BinReader& r, std::string& err, bool ok) {
  if (ok && !r.at_end()) ok = r.fail("trailing bytes after message");
  if (!ok) err = r.err.empty() ? "malformed binary message" : r.err;
  return ok;
}

// Response flag bits: which optional fields follow, in this order.
constexpr std::uint8_t kRespCached = 1U << 0;
constexpr std::uint8_t kRespHasCost = 1U << 1;
constexpr std::uint8_t kRespHasCosts = 1U << 2;
constexpr std::uint8_t kRespHasTelemetry = 1U << 3;
constexpr std::uint8_t kRespHasStats = 1U << 4;
constexpr std::uint8_t kRespHasError = 1U << 5;

}  // namespace

void encode_request_binary(const Request& req, std::string& out) {
  out += kBinaryRequestMagic;
  out += static_cast<char>(req.op);
  put_varint(out, req.id);
  if (req.op == Op::Run || req.op == Op::Cell) {
    put_bytes(out, req.spec.engine);
    put_bytes(out, req.spec.workload);
    put_varint(out, req.spec.params.size());
    for (const auto& [key, value] : req.spec.params) {
      put_bytes(out, key);
      put_varint(out, value);
    }
    put_u64le(out, req.seed);  // seeds span the full u64 range; fixed width
    if (req.op == Op::Cell) {
      put_varint(out, req.trial0);
      put_varint(out, req.trials);
    }
  }
}

std::string encode_request_binary(const Request& req) {
  std::string out;
  encode_request_binary(req, out);
  return out;
}

void encode_response_binary(const Response& resp, std::string& out) {
  // Mirror the JSON encoder's field discipline exactly: `cached` rides
  // only with a cost payload, so a struct the text codec cannot
  // round-trip is not representable here either.
  if (resp.has_cost && std::isnan(resp.cost))
    throw std::invalid_argument("encode_response_binary: NaN cost");
  for (const double c : resp.costs)
    if (std::isnan(c))
      throw std::invalid_argument("encode_response_binary: NaN cost");
  out += kBinaryResponseMagic;
  put_varint(out, resp.id);
  out += static_cast<char>(resp.status);
  std::uint8_t flags = 0;
  const bool carries_cost = resp.has_cost || !resp.costs.empty();
  if (resp.cached && carries_cost) flags |= kRespCached;
  if (resp.has_cost) flags |= kRespHasCost;
  if (!resp.costs.empty()) flags |= kRespHasCosts;
  if (!resp.telemetry.empty()) flags |= kRespHasTelemetry;
  if (!resp.stats_json.empty()) flags |= kRespHasStats;
  if (resp.status == Status::Error) flags |= kRespHasError;
  out += static_cast<char>(flags);
  if (resp.has_cost) put_f64le(out, resp.cost);
  if (!resp.costs.empty()) {
    put_varint(out, resp.costs.size());
    for (const double c : resp.costs) put_f64le(out, c);
  }
  if (!resp.telemetry.empty()) put_bytes(out, resp.telemetry);
  if (!resp.stats_json.empty()) put_bytes(out, resp.stats_json);
  if (resp.status == Status::Error) put_bytes(out, resp.error);
}

std::string encode_response_binary(const Response& resp) {
  std::string out;
  encode_response_binary(resp, out);
  return out;
}

bool decode_request_binary(std::string_view payload, Request& out,
                           std::string& err) {
  BinReader r{payload, 0, {}};
  out = Request{};
  std::uint8_t magic = 0, op = 0;
  bool ok = r.get_u8(magic);
  if (ok && magic != static_cast<std::uint8_t>(kBinaryRequestMagic))
    ok = r.fail("bad request magic");
  if (ok) ok = r.get_u8(op);
  if (ok && op > static_cast<std::uint8_t>(Op::Shutdown))
    ok = r.fail("unknown op " + std::to_string(op));
  if (ok) {
    out.op = static_cast<Op>(op);
    ok = r.get_varint(out.id);
  }
  if (ok && (out.op == Op::Run || out.op == Op::Cell)) {
    std::uint64_t nparams = 0;
    ok = r.get_bytes(out.spec.engine) && r.get_bytes(out.spec.workload) &&
         r.get_varint(nparams);
    if (ok && nparams > payload.size())
      ok = r.fail("param count exceeds message size");
    for (std::uint64_t i = 0; ok && i < nparams; ++i) {
      std::string key;
      std::uint64_t value = 0;
      ok = r.get_bytes(key) && r.get_varint(value);
      for (const auto& [existing, unused] : out.spec.params)
        if (ok && existing == key)
          ok = r.fail("duplicate param '" + key + "'");
      if (ok) out.spec.params.emplace_back(std::move(key), value);
    }
    if (ok) ok = r.get_u64le(out.seed);
    if (ok && out.op == Op::Cell) {
      ok = r.get_varint(out.trial0) && r.get_varint(out.trials);
      if (ok && out.trials == 0)
        ok = r.fail("cell request needs trials >= 1");
    }
  }
  return bin_finish(r, err, ok);
}

bool decode_response_binary(std::string_view payload, Response& out,
                            std::string& err) {
  BinReader r{payload, 0, {}};
  out = Response{};
  std::uint8_t magic = 0, status = 0, flags = 0;
  bool ok = r.get_u8(magic);
  if (ok && magic != static_cast<std::uint8_t>(kBinaryResponseMagic))
    ok = r.fail("bad response magic");
  if (ok) ok = r.get_varint(out.id) && r.get_u8(status);
  if (ok && status > static_cast<std::uint8_t>(Status::Error))
    ok = r.fail("unknown status " + std::to_string(status));
  if (ok) {
    out.status = static_cast<Status>(status);
    ok = r.get_u8(flags);
  }
  if (ok && (flags & ~(kRespCached | kRespHasCost | kRespHasCosts |
                       kRespHasTelemetry | kRespHasStats | kRespHasError)))
    ok = r.fail("unknown response flag bits");
  // The same invalid field combinations the JSON decoder refuses.
  if (ok && (flags & kRespCached) &&
      !(flags & (kRespHasCost | kRespHasCosts)))
    ok = r.fail("'cached' without 'cost' or 'costs'");
  if (ok && (flags & kRespHasCost) && (flags & kRespHasCosts))
    ok = r.fail("'cost' and 'costs' are mutually exclusive");
  if (ok && (flags & kRespHasTelemetry) && !(flags & kRespHasCosts))
    ok = r.fail("'telemetry' without 'costs'");
  if (ok && out.status == Status::Error && !(flags & kRespHasError))
    ok = r.fail("error response missing 'error'");
  if (ok) out.cached = (flags & kRespCached) != 0;
  if (ok && (flags & kRespHasCost)) {
    out.has_cost = true;
    ok = r.get_f64le(out.cost);
  }
  if (ok && (flags & kRespHasCosts)) {
    std::uint64_t n = 0;
    ok = r.get_varint(n);
    if (ok && n == 0) ok = r.fail("empty costs list");
    if (ok && n > (payload.size() - r.pos) / 8 + 1)
      ok = r.fail("costs count exceeds message size");
    for (std::uint64_t i = 0; ok && i < n; ++i) {
      double v = 0.0;
      ok = r.get_f64le(v);
      if (ok) out.costs.push_back(v);
    }
  }
  if (ok && (flags & kRespHasTelemetry)) ok = r.get_bytes(out.telemetry);
  if (ok && (flags & kRespHasStats)) {
    ok = r.get_bytes(out.stats_json);
    if (ok && (out.stats_json.empty() || out.stats_json[0] != '{'))
      ok = r.fail("'stats' must be an object");
  }
  if (ok && (flags & kRespHasError)) ok = r.get_bytes(out.error);
  return bin_finish(r, err, ok);
}

std::string canonical_request(const Request& req) {
  auto params = req.spec.params;
  std::sort(params.begin(), params.end());
  std::string out = kCodeVersion;
  out += "|engine=" + req.spec.engine;
  out += "|workload=" + req.spec.workload;
  for (const auto& [key, value] : params)
    out += "|" + key + "=" + std::to_string(value);
  out += "|seed=" + std::to_string(req.seed);
  // A cell's identity is the base seed plus its repetition block: the
  // derived per-trial seeds are a pure function of (seed, trial0 + r).
  // The "cell" marker keeps the key space disjoint from single-trial
  // runs — no param is ever spelled "cell", so a run key can never
  // collide with a cell key.
  if (req.op == Op::Cell)
    out += "|cell|trial0=" + std::to_string(req.trial0) +
           "|trials=" + std::to_string(req.trials);
  return out;
}

std::string cache_key(const Request& req) {
  return sha256_hex(canonical_request(req));
}

void append_frame(std::string& buf, std::string_view payload,
                  std::size_t max_payload) {
  if (payload.size() > max_payload)
    throw std::length_error(
        "append_frame: payload of " + std::to_string(payload.size()) +
        " bytes exceeds the frame limit of " + std::to_string(max_payload) +
        " bytes");
  const auto n = static_cast<std::uint32_t>(payload.size());
  for (unsigned i = 0; i < 4; ++i)
    buf += static_cast<char>((n >> (8U * i)) & 0xFFU);
  buf.append(payload);
}

FrameResult extract_frame(std::string_view buf, std::string& payload,
                          std::size_t& consumed, std::size_t max_payload) {
  if (buf.size() < 4) return FrameResult::NeedMore;
  std::uint32_t n = 0;
  for (unsigned i = 0; i < 4; ++i)
    n |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]))
         << (8U * i);
  if (n > max_payload) return FrameResult::TooLarge;
  if (buf.size() < 4U + n) return FrameResult::NeedMore;
  payload.assign(buf.substr(4, n));
  consumed = 4U + n;
  return FrameResult::Ok;
}

void FrameDecoder::feed(std::string_view bytes) { buf_.append(bytes); }

FrameResult FrameDecoder::next(std::string& payload) {
  std::size_t consumed = 0;
  const FrameResult r = extract_frame(
      std::string_view(buf_).substr(off_), payload, consumed, max_payload_);
  if (r == FrameResult::Ok) {
    off_ += consumed;
    // Compact once the dead prefix dominates; amortized O(1) per byte.
    if (off_ >= 4096 && off_ * 2 >= buf_.size()) {
      buf_.erase(0, off_);
      off_ = 0;
    }
  } else if (r == FrameResult::TooLarge) {
    std::uint32_t n = 0;
    for (unsigned i = 0; i < 4; ++i)
      n |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(buf_[off_ + i]))
           << (8U * i);
    error_ = "frame payload of " + std::to_string(n) +
             " bytes exceeds the frame limit of " +
             std::to_string(max_payload_) + " bytes";
  }
  return r;
}

}  // namespace parbounds::service
