#pragma once
// Content-addressed result cache (docs/SERVICE.md). One completed trial
// = one file named by its cache key (sha256 of the canonical request),
// holding a self-checking header plus the payload:
//
//   parbounds-cache-v1 <key> <sha256_hex(payload)> <payload size>\n
//   <payload bytes>
//
// Writes go to a tmp file first and are renamed into place, so a
// reader never observes a half-written entry and a crashed writer
// leaves only tmp droppings (swept on startup — but only when the pid
// baked into the tmp name is provably dead, so a live process sharing
// the directory is never raced out of an in-flight publish). That
// atomic publish is
// also what makes one directory safe to SHARE between processes (fleet
// workers, docs/SERVICE.md): concurrent writers racing the same key
// rename identical bytes over each other (the key is a content
// address), and fetch() falls back to a validated disk probe for keys
// another process published after this cache's startup scan. Any mismatch between
// the header and the bytes on disk — truncation, bit rot, a file
// renamed by hand — makes fetch() return Corrupt and unlink the entry:
// a corrupt result is re-run, never served.
//
// Eviction is LRU over a logical tick counter (never wall clock —
// det.wall-clock applies here too): every hit and insert bumps the
// entry's tick, and when the on-disk total exceeds max_bytes the
// smallest-tick entries are removed first. The startup scan assigns
// ticks in sorted-filename order so a reopened cache evicts
// deterministically.

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace parbounds::service {

struct CacheConfig {
  std::filesystem::path dir;             ///< created if missing
  std::uint64_t max_bytes = 64u << 20;   ///< on-disk budget (headers incl.)
};

enum class FetchResult : std::uint8_t { Hit, Miss, Corrupt };

class ResultCache {
 public:
  explicit ResultCache(CacheConfig cfg);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Look up `key`; on Hit fills `payload` and refreshes LRU recency.
  /// Corrupt means an entry existed but failed validation (it has been
  /// unlinked; the caller re-runs exactly as for Miss). A key missing
  /// from the in-memory index is probed once on disk before reporting
  /// Miss, so entries published by a concurrent process sharing the
  /// directory (fleet workers) are adopted instead of re-executed.
  FetchResult fetch(const std::string& key, std::string& payload);

  /// Write (key → payload) atomically; returns how many old entries
  /// were evicted to stay under max_bytes. Inserting an existing key
  /// only refreshes its recency.
  std::size_t insert(const std::string& key, std::string_view payload);

  struct Totals {
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;  ///< on-disk bytes, headers included
  };
  Totals totals() const;

 private:
  struct Entry {
    std::uint64_t bytes = 0;  ///< whole-file size
    std::uint64_t tick = 0;   ///< logical recency (higher = fresher)
  };

  std::filesystem::path path_of(const std::string& key) const;
  void drop_locked(const std::string& key);
  std::size_t evict_to_budget_locked();

  CacheConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> index_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t tmp_seq_ = 0;
};

}  // namespace parbounds::service
