#include "runtime/sweep_service/service.hpp"

#include <charconv>
#include <cstdio>
#include <exception>
#include <future>
#include <iterator>
#include <map>

#include "obs/span.hpp"
#include "runtime/sweep_service/registry.hpp"

namespace parbounds::service {

namespace {

/// Cached payload: the cost as %.17g text — round-trips the double
/// exactly and keeps cache entries human-inspectable.
std::string cost_payload(double cost) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", cost);
  return buf;
}

bool parse_cost(const std::string& payload, double& cost) {
  const auto res =
      std::from_chars(payload.data(), payload.data() + payload.size(), cost);
  return res.ec == std::errc() &&
         res.ptr == payload.data() + payload.size();
}

}  // namespace

SweepService::SweepService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      metrics_(),
      hit_id_(metrics_.counter("cache.hit")),
      miss_id_(metrics_.counter("cache.miss")),
      evict_id_(metrics_.counter("cache.evict")),
      corrupt_id_(metrics_.counter("cache.corrupt")),
      shed_id_(metrics_.counter("queue.shed")),
      exec_id_(metrics_.counter("service.exec")),
      depth_id_(metrics_.gauge("queue.depth")),
      cache_(cfg_.cache),
      runner_({.jobs = cfg_.jobs == 0 ? 1 : cfg_.jobs}) {
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

SweepService::~SweepService() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
}

void SweepService::submit(Request req, Callback cb) {
  bool shed = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= cfg_.queue_capacity) {
      shed = true;
    } else {
      const obs::Span admit(obs::process_tracer(), "service.admit", req.id);
      queue_.push_back(Pending{std::move(req), std::move(cb)});
      metrics_.record_max(depth_id_, queue_.size());
    }
  }
  if (shed) {
    metrics_.add(shed_id_);
    Response resp;
    resp.id = req.id;
    resp.status = Status::Retry;
    cb(std::move(resp));
    return;
  }
  cv_.notify_one();
}

Response SweepService::call(Request req) {
  std::promise<Response> done;
  auto fut = done.get_future();
  submit(std::move(req),
         [&done](Response resp) { done.set_value(std::move(resp)); });
  return fut.get();
}

std::string SweepService::stats_json() const {
  return metrics_.snapshot().to_json();
}

void SweepService::dispatch_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
    }
    handle_batch(std::move(batch));
  }
}

void SweepService::handle_batch(std::vector<Pending> batch) {
  obs::Tracer* tracer = obs::process_tracer();

  // Pass 1: answer everything the cache (or a trivial op) can answer.
  // Only genuine misses survive into the runner batch, deduplicated by
  // cache key — a batch holding the same request twice executes it once.
  std::vector<std::string> miss_keys;           // unique, first-seen order
  std::map<std::string, std::vector<std::size_t>> miss_of;  // key -> batch idx
  std::vector<std::size_t> stats_waiting;       // answered after pass 2
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& req = batch[i].req;
    Response resp;
    resp.id = req.id;
    switch (req.op) {
      case Op::Ping:
      case Op::Shutdown:
        break;  // plain ok ack; shutdown semantics live in the serve loop
      case Op::Stats:
        // Deferred: a stats snapshot taken mid-batch would not reflect
        // the runs admitted ahead of it.
        stats_waiting.push_back(i);
        continue;
      case Op::Cell:
        // Cells are the fleet workers' op (fleet/worker.hpp); the
        // daemon's unit of exchange stays the single run.
        resp.status = Status::Error;
        resp.error = "cell op is served by fleet workers, not the daemon";
        break;
      case Op::Run: {
        resp = run_request(req);
        if (resp.status == Status::Ok && !resp.cached) {
          const std::string key = cache_key(req);
          auto& indices = miss_of[key];
          if (indices.empty()) miss_keys.push_back(key);
          indices.push_back(i);
          continue;  // answered by pass 2
        }
        break;
      }
    }
    batch[i].cb(std::move(resp));
  }

  // Pass 2: execute the unique misses through the runner (inline when
  // jobs=1), then publish each result to the cache and answer every
  // request that mapped to it.
  if (!miss_keys.empty()) {
    std::vector<Response> results;
    if (cfg_.miss_executor) {
      // Fleet-backed daemon: hand the deduplicated misses to the
      // external executor in one batch. Same exec accounting, same
      // cache publication below — only where the kernels run differs.
      const obs::Span run_span(tracer, "service.run", miss_keys.size());
      std::vector<Request> misses;
      misses.reserve(miss_keys.size());
      for (const std::string& key : miss_keys)
        misses.push_back(batch[miss_of[key].front()].req);
      metrics_.add(exec_id_, misses.size());
      results = cfg_.miss_executor(misses);
      if (results.size() != misses.size()) {
        Response bad;
        bad.status = Status::Error;
        bad.error = "miss executor returned " +
                    std::to_string(results.size()) + " responses for " +
                    std::to_string(misses.size()) + " requests";
        results.assign(misses.size(), bad);
      }
    } else {
      const obs::Span run_span(tracer, "service.run", miss_keys.size());
      results = runner_.map<Response>(
          miss_keys.size(), [&](std::uint64_t j) -> Response {
            const Request& req = batch[miss_of[miss_keys[j]].front()].req;
            Response resp;
            metrics_.add(exec_id_);
            double cost = 0.0;
            std::string err;
            try {
              if (run_spec(req.spec, req.seed, cost, err)) {
                resp.has_cost = true;
                resp.cost = cost;
              } else {
                resp.status = Status::Error;
                resp.error = err;
              }
            } catch (const std::exception& e) {
              resp.status = Status::Error;
              resp.error = e.what();
            }
            return resp;
          });
    }

    for (std::size_t j = 0; j < miss_keys.size(); ++j) {
      const Response& result = results[j];
      if (result.status == Status::Ok && result.has_cost) {
        const obs::Span commit_span(tracer, "service.commit", j);
        const std::size_t evicted =
            cache_.insert(miss_keys[j], cost_payload(result.cost));
        if (evicted > 0) metrics_.add(evict_id_, evicted);
      }
      for (const std::size_t i : miss_of[miss_keys[j]]) {
        Response resp = result;
        resp.id = batch[i].req.id;
        batch[i].cb(std::move(resp));
      }
    }
  }

  for (const std::size_t i : stats_waiting) {
    Response resp;
    resp.id = batch[i].req.id;
    resp.stats_json = stats_json();
    batch[i].cb(std::move(resp));
  }
}

Response SweepService::run_request(const Request& req) {
  Response resp;
  resp.id = req.id;

  std::string payload;
  switch (cache_.fetch(cache_key(req), payload)) {
    case FetchResult::Hit: {
      double cost = 0.0;
      if (parse_cost(payload, cost)) {
        metrics_.add(hit_id_);
        resp.cached = true;
        resp.has_cost = true;
        resp.cost = cost;
        return resp;
      }
      // Validated bytes that don't parse as a cost: treat as corrupt.
      metrics_.add(corrupt_id_);
      metrics_.add(miss_id_);
      return resp;
    }
    case FetchResult::Corrupt:
      metrics_.add(corrupt_id_);
      metrics_.add(miss_id_);
      return resp;
    case FetchResult::Miss:
      metrics_.add(miss_id_);
      return resp;
  }
  return resp;  // unreachable; keeps -Wreturn-type quiet
}

}  // namespace parbounds::service
