#include "runtime/sweep_service/serve.hpp"

#include <condition_variable>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>

namespace parbounds::service {

bool StdioTransport::recv(std::string& payload) {
  while (std::getline(in_, payload)) {
    if (!payload.empty() && payload.back() == '\r') payload.pop_back();
    if (!payload.empty()) return true;
  }
  return false;
}

void StdioTransport::send(const std::string& payload) {
  out_ << payload << '\n';
  out_.flush();
}

ServeResult serve(SweepService& svc, Transport& transport) {
  ServeResult result;

  // Reorder buffer: responses are emitted strictly in the sequence their
  // requests arrived, whatever order the service completes them in.
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::uint64_t, std::string> ready;
  std::uint64_t next_emit = 0;

  const auto emit = [&](std::uint64_t seq, std::string payload) {
    const std::lock_guard<std::mutex> lock(mu);
    ready.emplace(seq, std::move(payload));
    for (auto it = ready.find(next_emit); it != ready.end();
         it = ready.find(next_emit)) {
      transport.send(it->second);
      ready.erase(it);
      ++next_emit;
      ++result.served;
    }
    cv.notify_all();
  };

  std::uint64_t next_seq = 0;
  std::string payload;
  while (transport.recv(payload)) {
    const std::uint64_t seq = next_seq++;
    Request req;
    std::string err;
    if (!decode_request(payload, req, err)) {
      Response resp;
      resp.id = req.id;  // 0 unless decode got that far
      resp.status = Status::Error;
      resp.error = err;
      emit(seq, encode_response(resp));
      continue;
    }
    const bool is_shutdown = req.op == Op::Shutdown;
    svc.submit(std::move(req), [&emit, seq](Response resp) {
      emit(seq, encode_response(resp));
    });
    if (is_shutdown) {
      result.shutdown = true;
      break;  // ack still in flight; the drain below waits for it
    }
  }

  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return next_emit == next_seq; });
  return result;
}

}  // namespace parbounds::service
