#include "runtime/sweep_service/cache.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <system_error>
#include <utility>
#include <vector>

#include "util/sha256.hpp"

namespace parbounds::service {

namespace {

constexpr const char* kMagic = "parbounds-cache-v1";

std::string header_line(const std::string& key, std::string_view payload) {
  return std::string(kMagic) + " " + key + " " + sha256_hex(payload) + " " +
         std::to_string(payload.size()) + "\n";
}

bool read_file(const std::filesystem::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return in.good() || in.eof();
}

/// Split "<magic> <key> <hash> <size>\n<payload>" and validate every
/// field against the actual bytes. Returns false on any mismatch.
bool validate_entry(const std::string& key, const std::string& raw,
                    std::string& payload) {
  const std::size_t eol = raw.find('\n');
  if (eol == std::string::npos) return false;
  const std::string_view header(raw.data(), eol);

  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= header.size()) {
    const std::size_t sp = header.find(' ', start);
    if (sp == std::string_view::npos) {
      fields.push_back(header.substr(start));
      break;
    }
    fields.push_back(header.substr(start, sp - start));
    start = sp + 1;
  }
  if (fields.size() != 4) return false;
  if (fields[0] != kMagic || fields[1] != key) return false;

  const std::string_view body(raw.data() + eol + 1, raw.size() - eol - 1);
  if (fields[3] != std::to_string(body.size())) return false;
  if (fields[2] != sha256_hex(body)) return false;

  payload.assign(body);
  return true;
}

void unlink_quiet(const std::filesystem::path& p) {
  std::error_code ec;
  std::filesystem::remove(p, ec);
}

}  // namespace

ResultCache::ResultCache(CacheConfig cfg) : cfg_(std::move(cfg)) {
  std::filesystem::create_directories(cfg_.dir);

  // Deterministic startup scan: sorted filenames, so two caches opened
  // on the same directory agree on eviction order. Tmp droppings from a
  // crashed writer are swept here.
  std::vector<std::string> names;
  for (const auto& de : std::filesystem::directory_iterator(cfg_.dir)) {
    if (!de.is_regular_file()) continue;
    names.push_back(de.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  for (const auto& name : names) {
    if (name.rfind("tmp-", 0) == 0) {
      unlink_quiet(cfg_.dir / name);
      continue;
    }
    std::error_code ec;
    const auto size = std::filesystem::file_size(cfg_.dir / name, ec);
    if (ec) continue;
    index_[name] = Entry{size, ++tick_};
    total_bytes_ += size;
  }
}

std::filesystem::path ResultCache::path_of(const std::string& key) const {
  return cfg_.dir / key;
}

FetchResult ResultCache::fetch(const std::string& key, std::string& payload) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return FetchResult::Miss;

  std::string raw;
  if (!read_file(path_of(key), raw) || !validate_entry(key, raw, payload)) {
    drop_locked(key);
    return FetchResult::Corrupt;
  }
  it->second.tick = ++tick_;
  return FetchResult::Hit;
}

std::size_t ResultCache::insert(const std::string& key,
                                std::string_view payload) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second.tick = ++tick_;  // same content address: just a touch
    return 0;
  }

  const std::string blob = header_line(key, payload) + std::string(payload);
  const std::filesystem::path tmp =
      cfg_.dir / ("tmp-" + std::to_string(++tmp_seq_) + "-" + key);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out.good()) {
      unlink_quiet(tmp);
      return 0;  // disk trouble: behave as an uncached run
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_of(key), ec);  // atomic publish
  if (ec) {
    unlink_quiet(tmp);
    return 0;
  }
  index_[key] = Entry{blob.size(), ++tick_};
  total_bytes_ += blob.size();
  return evict_to_budget_locked();
}

ResultCache::Totals ResultCache::totals() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return Totals{index_.size(), total_bytes_};
}

void ResultCache::drop_locked(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  total_bytes_ -= it->second.bytes;
  index_.erase(it);
  unlink_quiet(path_of(key));
}

std::size_t ResultCache::evict_to_budget_locked() {
  std::size_t evicted = 0;
  while (total_bytes_ > cfg_.max_bytes && !index_.empty()) {
    auto victim = index_.begin();
    for (auto it = std::next(index_.begin()); it != index_.end(); ++it)
      if (it->second.tick < victim->second.tick) victim = it;
    total_bytes_ -= victim->second.bytes;
    unlink_quiet(path_of(victim->first));
    index_.erase(victim);
    ++evicted;
  }
  return evicted;
}

}  // namespace parbounds::service
