#include "runtime/sweep_service/cache.hpp"

#include <signal.h>  // NOLINT(modernize-deprecated-headers): kill(2) is POSIX-only
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <system_error>
#include <utility>
#include <vector>

#include "util/sha256.hpp"

namespace parbounds::service {

namespace {

constexpr const char* kMagic = "parbounds-cache-v1";

std::string header_line(const std::string& key, std::string_view payload) {
  return std::string(kMagic) + " " + key + " " + sha256_hex(payload) + " " +
         std::to_string(payload.size()) + "\n";
}

bool read_file(const std::filesystem::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return in.good() || in.eof();
}

/// Split "<magic> <key> <hash> <size>\n<payload>" and validate every
/// field against the actual bytes. Returns false on any mismatch.
bool validate_entry(const std::string& key, const std::string& raw,
                    std::string& payload) {
  const std::size_t eol = raw.find('\n');
  if (eol == std::string::npos) return false;
  const std::string_view header(raw.data(), eol);

  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= header.size()) {
    const std::size_t sp = header.find(' ', start);
    if (sp == std::string_view::npos) {
      fields.push_back(header.substr(start));
      break;
    }
    fields.push_back(header.substr(start, sp - start));
    start = sp + 1;
  }
  if (fields.size() != 4) return false;
  if (fields[0] != kMagic || fields[1] != key) return false;

  const std::string_view body(raw.data() + eol + 1, raw.size() - eol - 1);
  if (fields[3] != std::to_string(body.size())) return false;
  if (fields[2] != sha256_hex(body)) return false;

  payload.assign(body);
  return true;
}

void unlink_quiet(const std::filesystem::path& p) {
  std::error_code ec;
  std::filesystem::remove(p, ec);
}

/// Is the tmp file `name` ("tmp-<pid>-<seq>-<key>") a STALE dropping —
/// i.e. its writer is provably dead? The directory may be shared with
/// live processes (fleet workers, docs/SERVICE.md#fleet), so a startup
/// sweep that unlinked every tmp file would race a concurrent writer
/// out of its in-flight publish (rename(2) of a deleted source fails
/// and the insert is lost). Only kill(pid, 0) == ESRCH is proof of
/// death; an unparseable name is treated as stale (unknown format =
/// dropping), and EPERM (alive, different user) leaves the file alone.
bool tmp_writer_is_dead(const std::string& name) {
  const char* p = name.c_str() + 4;  // past "tmp-"
  char* end = nullptr;
  const unsigned long pid = std::strtoul(p, &end, 10);
  if (end == p || *end != '-' || pid == 0) return true;  // not our format
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return false;
  return errno == ESRCH;
}

}  // namespace

ResultCache::ResultCache(CacheConfig cfg) : cfg_(std::move(cfg)) {
  std::filesystem::create_directories(cfg_.dir);

  // Deterministic startup scan: sorted filenames, so two caches opened
  // on the same directory agree on eviction order. Tmp droppings from a
  // CRASHED writer are swept here; a live concurrent writer's in-flight
  // tmp files are left for it to rename (tmp_writer_is_dead above).
  std::vector<std::string> names;
  for (const auto& de : std::filesystem::directory_iterator(cfg_.dir)) {
    if (!de.is_regular_file()) continue;
    names.push_back(de.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  for (const auto& name : names) {
    if (name.rfind("tmp-", 0) == 0) {
      if (tmp_writer_is_dead(name)) unlink_quiet(cfg_.dir / name);
      continue;
    }
    std::error_code ec;
    const auto size = std::filesystem::file_size(cfg_.dir / name, ec);
    if (ec) continue;
    index_[name] = Entry{size, ++tick_};
    total_bytes_ += size;
  }
}

std::filesystem::path ResultCache::path_of(const std::string& key) const {
  return cfg_.dir / key;
}

FetchResult ResultCache::fetch(const std::string& key, std::string& payload) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    // Not in the in-memory index — but another process sharing this
    // directory (a fleet worker, docs/SERVICE.md) may have published
    // the entry after our startup scan. Probe the disk once: a valid
    // entry is adopted into the index and served; invalid bytes are
    // unlinked and reported Corrupt (re-run, never served); no file at
    // all is a plain Miss.
    std::string raw;
    if (!read_file(path_of(key), raw)) return FetchResult::Miss;
    if (!validate_entry(key, raw, payload)) {
      unlink_quiet(path_of(key));
      return FetchResult::Corrupt;
    }
    index_[key] = Entry{raw.size(), ++tick_};
    total_bytes_ += raw.size();
    evict_to_budget_locked();
    return FetchResult::Hit;
  }

  std::string raw;
  if (!read_file(path_of(key), raw) || !validate_entry(key, raw, payload)) {
    drop_locked(key);
    return FetchResult::Corrupt;
  }
  it->second.tick = ++tick_;
  return FetchResult::Hit;
}

std::size_t ResultCache::insert(const std::string& key,
                                std::string_view payload) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second.tick = ++tick_;  // same content address: just a touch
    return 0;
  }

  const std::string blob = header_line(key, payload) + std::string(payload);
  // The tmp name carries the pid: two processes publishing the same key
  // concurrently must stage into DIFFERENT files, or their writes would
  // interleave before the rename. Each then renames complete identical
  // bytes into place — last rename wins, both outcomes valid.
  const std::filesystem::path tmp =
      cfg_.dir / ("tmp-" + std::to_string(::getpid()) + "-" +
                  std::to_string(++tmp_seq_) + "-" + key);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out.good()) {
      unlink_quiet(tmp);
      return 0;  // disk trouble: behave as an uncached run
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_of(key), ec);  // atomic publish
  if (ec) {
    unlink_quiet(tmp);
    return 0;
  }
  index_[key] = Entry{blob.size(), ++tick_};
  total_bytes_ += blob.size();
  return evict_to_budget_locked();
}

ResultCache::Totals ResultCache::totals() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return Totals{index_.size(), total_bytes_};
}

void ResultCache::drop_locked(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  total_bytes_ -= it->second.bytes;
  index_.erase(it);
  unlink_quiet(path_of(key));
}

std::size_t ResultCache::evict_to_budget_locked() {
  std::size_t evicted = 0;
  while (total_bytes_ > cfg_.max_bytes && !index_.empty()) {
    auto victim = index_.begin();
    for (auto it = std::next(index_.begin()); it != index_.end(); ++it)
      if (it->second.tick < victim->second.tick) victim = it;
    total_bytes_ -= victim->second.bytes;
    unlink_quiet(path_of(victim->first));
    index_.erase(victim);
    ++evicted;
  }
  return evicted;
}

}  // namespace parbounds::service
