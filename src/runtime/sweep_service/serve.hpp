#pragma once
// Serve loop: pull messages off a Transport, decode, route through a
// SweepService, and emit responses IN REQUEST ORDER (a reorder buffer
// bridges the service's batch completion order back to arrival order,
// so a lock-step client can pair request k with response k). Malformed
// payloads become typed "error" responses in sequence — a broken client
// can not crash or desynchronize the daemon.
//
// Transport is the seam between the protocol and the bytes: JSONL over
// stdio for pipelines and tests, length-prefixed frames over a Unix
// socket for the daemon (tools/parbounds_serve.cpp). Both carry
// identical payloads (protocol.hpp).

#include <cstdint>
#include <iosfwd>
#include <string>

#include "runtime/sweep_service/service.hpp"

namespace parbounds::service {

/// One byte-stream endpoint. recv() blocks for the next whole message
/// payload and returns false on EOF / connection close; send() writes
/// one whole message. serve() serializes send() calls itself.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual bool recv(std::string& payload) = 0;
  virtual void send(const std::string& payload) = 0;
};

/// JSONL: one message per '\n'-terminated line. Blank lines are
/// skipped; output is flushed per message (lock-step clients depend on
/// it).
class StdioTransport : public Transport {
 public:
  StdioTransport(std::istream& in, std::ostream& out) : in_(in), out_(out) {}
  bool recv(std::string& payload) override;
  void send(const std::string& payload) override;

 private:
  std::istream& in_;
  std::ostream& out_;
};

struct ServeResult {
  bool shutdown = false;     ///< a shutdown op ended the loop (vs. EOF)
  std::uint64_t served = 0;  ///< responses emitted, errors included
};

/// Run until EOF or a shutdown op; every outstanding request is
/// answered before this returns.
ServeResult serve(SweepService& svc, Transport& transport);

}  // namespace parbounds::service
