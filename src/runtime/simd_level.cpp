#include "runtime/simd_level.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "runtime/harness_flags.hpp"

namespace parbounds::runtime {

namespace {

constexpr const char* kLevelNames[] = {"portable", "avx2", "avx512"};

// __builtin_cpu_supports only takes string literals, so each probed
// feature gets its own call site behind a name lookup.
#if defined(__x86_64__) || defined(__i386__)
#define PARBOUNDS_CPU_FEATURES(X) \
  X(popcnt)                       \
  X(bmi2)                         \
  X(avx)                          \
  X(avx2)                         \
  X(avx512f)                      \
  X(avx512bw)                     \
  X(avx512dq)                     \
  X(avx512vl)                     \
  X(avx512vpopcntdq)
bool cpu_has(const std::string& feature) {
#define PARBOUNDS_PROBE(name) \
  if (feature == #name) return __builtin_cpu_supports(#name) != 0;
  PARBOUNDS_CPU_FEATURES(PARBOUNDS_PROBE)
#undef PARBOUNDS_PROBE
  return false;
}
#else
bool cpu_has(const std::string&) { return false; }
#endif

/// One-time cpuid probe. The avx512 tier needs F (foundation), BW
/// (byte/word ops for the 64-lane masks) and VPOPCNTDQ (the per-lane
/// popcounts the counting kernels lean on); avx2 implies the 256-bit
/// integer ISA plus scalar popcnt.
SimdLevel probe_max_level() {
  if (cpu_has("avx512f") && cpu_has("avx512bw") &&
      cpu_has("avx512vpopcntdq"))
    return SimdLevel::kAvx512;
  if (cpu_has("avx2") && cpu_has("popcnt")) return SimdLevel::kAvx2;
  return SimdLevel::kPortable;
}

/// The resolved-once state: -1 = unresolved, otherwise a SimdLevel.
std::atomic<int>& active_state() {
  static std::atomic<int> state{-1};
  return state;
}

/// Resolve the startup level: the PARBOUNDS_SIMD pin when present
/// (unknown values and tiers the cpu cannot run are hard errors — a
/// silently ignored pin would fake equivalence-oracle coverage),
/// otherwise the highest tier the probe reports.
SimdLevel resolve_startup_level() {
  const char* env = std::getenv("PARBOUNDS_SIMD");
  if (env == nullptr || *env == '\0') return probe_max_level();
  SimdLevel pinned;
  std::string error;
  if (!parse_simd_level(env, pinned, error))
    throw std::invalid_argument(error);
  if (pinned > probe_max_level())
    throw std::invalid_argument(
        std::string("PARBOUNDS_SIMD=") + simd_level_name(pinned) +
        ": this cpu cannot run the " + simd_level_name(pinned) +
        " tier (max supported: " + simd_level_name(probe_max_level()) +
        ")");
  return pinned;
}

}  // namespace

const char* simd_level_name(SimdLevel level) {
  return kLevelNames[static_cast<unsigned>(level)];
}

bool parse_simd_level(const std::string& text, SimdLevel& out,
                      std::string& error) {
  for (unsigned i = 0; i < 3; ++i) {
    if (text == kLevelNames[i]) {
      out = static_cast<SimdLevel>(i);
      return true;
    }
  }
  const char* best = kLevelNames[0];
  std::size_t best_dist = edit_distance(text, best);
  for (const char* candidate : kLevelNames) {
    const std::size_t d = edit_distance(text, candidate);
    if (d < best_dist) {
      best = candidate;
      best_dist = d;
    }
  }
  error = "PARBOUNDS_SIMD=" + text + ": unknown dispatch level; did you mean '" +
          best + "'? (valid: portable, avx2, avx512)";
  return false;
}

SimdLevel max_supported_simd_level() {
  static const SimdLevel level = probe_max_level();
  return level;
}

std::vector<SimdLevel> supported_simd_levels() {
  std::vector<SimdLevel> out;
  const auto max = static_cast<unsigned>(max_supported_simd_level());
  for (unsigned i = 0; i <= max; ++i)
    out.push_back(static_cast<SimdLevel>(i));
  return out;
}

SimdLevel active_simd_level() {
  auto& state = active_state();
  int cur = state.load(std::memory_order_acquire);
  if (cur < 0) {
    const SimdLevel startup = resolve_startup_level();
    // First resolver wins; a concurrent set_simd_level() also wins —
    // both store a fully resolved level, so any published value is
    // valid and the kernels it selects are bit-identical anyway.
    int expected = -1;
    state.compare_exchange_strong(expected,
                                  static_cast<int>(startup),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire);
    cur = state.load(std::memory_order_acquire);
  }
  return static_cast<SimdLevel>(cur);
}

void set_simd_level(SimdLevel level) {
  if (level > max_supported_simd_level())
    throw std::invalid_argument(
        std::string("set_simd_level(") + simd_level_name(level) +
        "): this cpu cannot run the tier (max supported: " +
        simd_level_name(max_supported_simd_level()) + ")");
  active_state().store(static_cast<int>(level), std::memory_order_release);
}

const std::string& cpu_feature_flags() {
  static const std::string flags = [] {
    std::string out;
    for (const char* f :
         {"popcnt", "bmi2", "avx", "avx2", "avx512f", "avx512bw",
          "avx512dq", "avx512vl", "avx512vpopcntdq"}) {
      if (!cpu_has(f)) continue;
      if (!out.empty()) out += ' ';
      out += f;
    }
    return out.empty() ? std::string("none") : out;
  }();
  return flags;
}

}  // namespace parbounds::runtime
