#pragma once
// ParallelFor — the process-wide intra-trial worker pool.
//
// The ExperimentRunner (runner.hpp) fans out *across* trials; this pool
// fans out *inside* one trial: the sharded phase commit
// (core/phase_scan.hpp), the BoolFn Möbius/GF(2) transforms, and the
// adversary's per-entity refinement loops all run their inner loops
// through for_shards(). One pool serves the whole process; benches size
// it once from --threads (default: --jobs; see bench/harness.hpp), so
// one knob governs the intra-trial thread budget.
//
// Determinism contract (the reason this is not a generic task pool):
//
//  1. Static partition. for_shards(n, shards, body) always cuts [0, n)
//     at i*n/shards — the chunk boundaries depend on n and the shard
//     count only, NEVER on the thread count or on scheduling. Callers
//     pick the shard count as a pure function of the problem size
//     (shard_count()), so the partition an algorithm sees is identical
//     whether the pool has 1 or 64 threads.
//  2. Inline nesting. A for_shards issued from inside a pool worker or
//     an ExperimentRunner worker runs inline on the caller, in shard
//     order. Trial-level and intra-trial parallelism therefore compose
//     without oversubscription, and --jobs keeps its meaning as the
//     outer fan-out width.
//  3. Callers combine shard results with commutative, exact operations
//     (integer sums, maxima, minima), so the combined value is
//     bit-identical at every thread count. The pool guarantees (1) and
//     (2); the algorithms built on it (sharded commit, parallel Möbius)
//     are each documented with their own merge argument in docs/PERF.md.
//
// Threads park on a condition variable between jobs, so an idle pool
// costs nothing and a --threads 1 (or single-shard) call never touches
// a mutex: it runs the shard bodies inline.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace parbounds::runtime {

class ParallelFor {
 public:
  /// body(shard, lo, hi) processes indices [lo, hi) of shard `shard`.
  using Body = std::function<void(unsigned, std::uint64_t, std::uint64_t)>;

  /// The process-wide pool (default size 1: everything inline until a
  /// harness or test calls set_threads).
  static ParallelFor& pool();

  ParallelFor(const ParallelFor&) = delete;
  ParallelFor& operator=(const ParallelFor&) = delete;
  ~ParallelFor();

  /// Resize the pool to a concurrency of `t` (the caller participates,
  /// so t means "up to t shard bodies at once"); 0 means
  /// std::thread::hardware_concurrency(). Must not be called while a
  /// for_shards is in flight. Results of pool-based algorithms never
  /// depend on this value — only wall-clock does.
  void set_threads(unsigned t);
  unsigned threads() const { return threads_; }

  /// Run body over the static partition of [0, n): shard s covers
  /// [s*n/shards, (s+1)*n/shards). Returns after every shard completed.
  /// Runs inline (shard order 0..shards-1) when the pool has one
  /// thread, when shards <= 1, or when called from inside any pool /
  /// ExperimentRunner worker. The first exception a body throws is
  /// rethrown on the caller after all shards finish.
  void for_shards(std::uint64_t n, unsigned shards, const Body& body);

  /// Shard count for a problem of size n with at least `grain` items
  /// per shard, capped at `max_shards`: a pure function of n, so the
  /// partition is thread-count-independent by construction.
  static unsigned shard_count(std::uint64_t n, std::uint64_t grain,
                              unsigned max_shards) {
    if (n == 0) return 1;
    const std::uint64_t by_grain = n / std::max<std::uint64_t>(1, grain);
    return static_cast<unsigned>(std::clamp<std::uint64_t>(
        by_grain, 1, std::max<unsigned>(1, max_shards)));
  }

  /// True while the calling thread is a pool worker (nested calls run
  /// inline; algorithms can consult this to skip parallel-only setup).
  static bool in_pool_worker() noexcept;

 private:
  ParallelFor();
  struct Impl;
  std::unique_ptr<Impl> impl_;
  unsigned threads_ = 1;
};

/// Deterministic parallel sort for distinct elements: fixed shard
/// boundaries are sorted independently and merged pairwise, so with
/// all-distinct elements the result is the unique sorted order —
/// byte-identical to std::sort at any thread count. The engines sort
/// (address, issue-index) pairs, which are distinct by construction.
/// Falls back to std::sort below `grain` elements or on a 1-thread pool.
template <class T>
void parallel_sort(std::vector<T>& v, ParallelFor& pool,
                   std::size_t grain = std::size_t{1} << 16) {
  constexpr unsigned kShards = 8;  // power of two for the merge tree
  if (v.size() < grain || v.size() < kShards || pool.threads() <= 1 ||
      ParallelFor::in_pool_worker()) {
    std::sort(v.begin(), v.end());
    return;
  }
  const std::uint64_t n = v.size();
  auto bound = [n](unsigned s) {
    return static_cast<std::ptrdiff_t>(n * s / kShards);
  };
  pool.for_shards(n, kShards,
                  [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                    std::sort(v.begin() + static_cast<std::ptrdiff_t>(lo),
                              v.begin() + static_cast<std::ptrdiff_t>(hi));
                  });
  for (unsigned width = 1; width < kShards; width *= 2) {
    const unsigned pairs = kShards / (2 * width);
    pool.for_shards(pairs, pairs,
                    [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                      for (std::uint64_t p = lo; p < hi; ++p) {
                        const unsigned s = static_cast<unsigned>(p) * 2 * width;
                        std::inplace_merge(v.begin() + bound(s),
                                           v.begin() + bound(s + width),
                                           v.begin() + bound(s + 2 * width));
                      }
                    });
  }
}

}  // namespace parbounds::runtime
