#include "runtime/fleet/partition.hpp"

namespace parbounds::fleet {

std::pair<std::uint64_t, std::uint64_t> shard_range(std::uint64_t total,
                                                    unsigned shards,
                                                    unsigned s) {
  return {total * s / shards, total * (s + 1) / shards};
}

unsigned owner_of(std::uint64_t total, unsigned shards, std::uint64_t i) {
  // floor(((i+1)*shards - 1) / total): the unique s with
  // floor(s*total/shards) <= i < floor((s+1)*total/shards).
  return static_cast<unsigned>(((i + 1) * shards - 1) / total);
}

}  // namespace parbounds::fleet
