#pragma once
// Fleet worker — the child-process half of the sweep fleet
// (docs/SERVICE.md). A worker is the HOST BINARY re-exec'd with a
// single argument, "--fleet-worker=IDX,RFD,WFD": the coordinator
// fork/execs /proc/self/exe, so worker and coordinator are always the
// same build with the same kernels, and the front door of every
// fleet-capable main() is one maybe_run_worker(argc, argv) call before
// any other flag parsing.
//
// The worker serves a lock-step loop over an FdTransport: recv one
// request, answer it, repeat, until a shutdown op or EOF. Two ops do
// work:
//
//   run   one trial, the derived seed in the request — the execution
//         backend for a fleet-backed service daemon's miss batches;
//   cell  `trials` repetitions of one sweep cell from the BASE seed
//         (repetition r uses derive_seed(seed, trial0 + r)). Each cell
//         executes under a FRESH MetricsRegistry + TelemetryObserver,
//         and the response carries that per-cell snapshot in wire form.
//         Per-cell isolation is what makes crash recovery exact: a
//         dead worker's registry is unreachable, but every answered
//         cell already shipped its telemetry, so the coordinator's
//         commutative merge over one snapshot per cell reproduces the
//         cumulative block a single process would have written.
//
// Cells are optionally memoized in a shared content-addressed
// ResultCache (PARBOUNDS_FLEET_CACHE_DIR/_BYTES, exported by the
// coordinator): payload = the per-repetition costs plus the telemetry
// wire, keyed by the cell's canonical request, so a warm hit restores
// the metrics block exactly as if the kernels had run.
//
// Fault-injection knobs for the retry machinery's tests (read once at
// startup; "W:K" = worker index W, 1-based request ordinal K):
//   PARBOUNDS_FLEET_CRASH  raise SIGKILL on receiving the K-th
//                          run/cell request — a genuine mid-sweep kill;
//   PARBOUNDS_FLEET_HANG   sleep forever instead of answering it (the
//                          per-cell deadline path).

#include <string>
#include <string_view>
#include <vector>

namespace parbounds::fleet {

inline constexpr const char* kWorkerFlagPrefix = "--fleet-worker=";
inline constexpr const char* kCacheDirEnv = "PARBOUNDS_FLEET_CACHE_DIR";
inline constexpr const char* kCacheBytesEnv = "PARBOUNDS_FLEET_CACHE_BYTES";
inline constexpr const char* kCrashEnv = "PARBOUNDS_FLEET_CRASH";
inline constexpr const char* kHangEnv = "PARBOUNDS_FLEET_HANG";

/// Serve fleet requests on (rfd, wfd) until shutdown or EOF. Returns
/// the process exit code (0 = clean shutdown/EOF).
int worker_main(unsigned index, int rfd, int wfd);

/// Parse "--fleet-worker=IDX,RFD,WFD".
bool parse_worker_token(std::string_view token, unsigned& index, int& rfd,
                        int& wfd);

/// The fleet-capable front door: when argv[1] is a worker token, run
/// worker_main and EXIT THE PROCESS; otherwise return. Call first in
/// main(), before any other argv or flag handling.
void maybe_run_worker(int argc, char** argv);

/// Cell cache payload codec: "<c1>,<c2>,...\n<telemetry wire>" with
/// costs as %.17g (exact double round trip). Exposed for tests.
std::string encode_cell_payload(const std::vector<double>& costs,
                                const std::string& telemetry);
bool decode_cell_payload(std::string_view payload,
                         std::vector<double>& costs, std::string& telemetry);

}  // namespace parbounds::fleet
