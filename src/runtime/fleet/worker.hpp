#pragma once
// Fleet worker — the child-process half of the sweep fleet
// (docs/SERVICE.md). A worker is the HOST BINARY re-exec'd with a
// single argument, "--fleet-worker=IDX,RFD,WFD": the coordinator
// fork/execs /proc/self/exe, so worker and coordinator are always the
// same build with the same kernels, and the front door of every
// fleet-capable main() is one maybe_run_worker(argc, argv) call before
// any other flag parsing.
//
// Before any work flows the two sides shake hands (docs/SERVICE.md
// #wire-v2): the coordinator's first frame is a wire-version OFFER
// ("parbounds-fleet-offer wire=N"), the worker's first frame an ACK
// with min(N, kWireVersionMax) — so the pair always converses in the
// newest codec both speak, and a version-skewed peer (possible once
// workers live on other hosts) degrades to the older wire instead of
// desynchronizing. Every later frame uses the negotiated codec: v1
// JSON text or the v2 binary codec (protocol.hpp), selected at the
// coordinator by PARBOUNDS_FLEET_WIRE=text|binary (default binary).
//
// The worker serves a serial loop over an FdTransport: recv one
// request, answer it, repeat, until a shutdown op or EOF. The
// coordinator may pipeline up to its credit window of requests into
// the pipe; the worker answers them strictly in arrival order. Two ops
// do work:
//
//   run   one trial, the derived seed in the request — the execution
//         backend for a fleet-backed service daemon's miss batches;
//   cell  `trials` repetitions of one sweep cell from the BASE seed
//         (repetition r uses derive_seed(seed, trial0 + r)). Each cell
//         executes under a FRESH MetricsRegistry + TelemetryObserver,
//         and the response carries that per-cell snapshot in wire form.
//         Per-cell isolation is what makes crash recovery exact: a
//         dead worker's registry is unreachable, but every answered
//         cell already shipped its telemetry, so the coordinator's
//         commutative merge over one snapshot per cell reproduces the
//         cumulative block a single process would have written.
//
// Cells are optionally memoized in a shared content-addressed
// ResultCache (PARBOUNDS_FLEET_CACHE_DIR/_BYTES, exported by the
// coordinator): payload = the per-repetition costs plus the telemetry
// wire, keyed by the cell's canonical request, so a warm hit restores
// the metrics block exactly as if the kernels had run.
//
// Fault-injection knobs for the retry machinery's tests (read once at
// startup; "W:K" = worker index W, 1-based request ordinal K):
//   PARBOUNDS_FLEET_CRASH  raise SIGKILL on receiving the K-th
//                          run/cell request — a genuine mid-sweep kill;
//   PARBOUNDS_FLEET_HANG   sleep forever instead of answering it (the
//                          per-cell deadline path).

#include <string>
#include <string_view>
#include <vector>

namespace parbounds::fleet {

inline constexpr const char* kWorkerFlagPrefix = "--fleet-worker=";
inline constexpr const char* kCacheDirEnv = "PARBOUNDS_FLEET_CACHE_DIR";
inline constexpr const char* kCacheBytesEnv = "PARBOUNDS_FLEET_CACHE_BYTES";
inline constexpr const char* kCrashEnv = "PARBOUNDS_FLEET_CRASH";
inline constexpr const char* kHangEnv = "PARBOUNDS_FLEET_HANG";
/// Coordinator-side wire selection: "text" (v1 JSON) or "binary" (v2,
/// the default). Anything else is a typed startup error.
inline constexpr const char* kWireEnv = "PARBOUNDS_FLEET_WIRE";

/// Handshake frames (always plain text, version-independent).
inline constexpr const char* kOfferPrefix = "parbounds-fleet-offer wire=";
inline constexpr const char* kAckPrefix = "parbounds-fleet-ack wire=";

/// Parse "<prefix><u64>" exactly; false on any other shape.
bool parse_handshake(std::string_view payload, std::string_view prefix,
                     unsigned& version);

/// Resolve PARBOUNDS_FLEET_WIRE: unset/"binary" -> kWireVersionBinary,
/// "text" -> kWireVersionText. Throws std::invalid_argument with a
/// did-you-mean hint on any other value.
unsigned wire_version_from_env();

/// Serve fleet requests on (rfd, wfd) until shutdown or EOF. Returns
/// the process exit code (0 = clean shutdown/EOF).
int worker_main(unsigned index, int rfd, int wfd);

/// Parse "--fleet-worker=IDX,RFD,WFD".
bool parse_worker_token(std::string_view token, unsigned& index, int& rfd,
                        int& wfd);

/// The fleet-capable front door: when argv[1] is a worker token, run
/// worker_main and EXIT THE PROCESS; otherwise return. Call first in
/// main(), before any other argv or flag handling.
void maybe_run_worker(int argc, char** argv);

/// Cell cache payload codec: "<c1>,<c2>,...\n<telemetry wire>" with
/// costs as %.17g (exact double round trip). Exposed for tests.
std::string encode_cell_payload(const std::vector<double>& costs,
                                const std::string& telemetry);
bool decode_cell_payload(std::string_view payload,
                         std::vector<double>& costs, std::string& telemetry);

}  // namespace parbounds::fleet
