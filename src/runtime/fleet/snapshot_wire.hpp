#pragma once
// Wire form of a MetricsSnapshot, carried inside cell responses
// (docs/SERVICE.md). JSON's to_json() is a one-way rendering — it drops
// the flat registration order merge_from() keys on — so the fleet ships
// snapshots in a trivially invertible line format instead:
//
//   c <name> <value>;g <name> <value>;h <name> <b1,b2,..> <c1,c2,..>;
//
// one record per metric, in registration order, every number a decimal
// u64. The format is strict the same way the service codec is: unknown
// record kinds, malformed numbers, bucket/bound arity mismatches and
// trailing bytes are all typed decode errors. Two workers running the
// same TelemetryObserver construction encode snapshots with identical
// record sequences, which is the precondition merge_from() checks.
//
// Wire v2 adds a binary form (docs/SERVICE.md#wire-v2): a 0x01 magic
// byte, a varint metric count, then per metric a kind byte, a
// varint-length name and varint values — bit-exact over the full u64
// range, no decimal detour, and one byte for the small counter values
// snapshots mostly carry (fixed u64le would triple a typical
// snapshot's size against the decimal text form). The two encodings are self-identifying (a text
// snapshot always starts with 'c', 'g' or 'h'; 0x01 is none of them),
// so decode_snapshot dispatches on the first byte and a merged report
// can mix snapshots from text-wire and binary-wire workers — a warm
// shared-cache hit stores the canonical text form regardless of the
// wire a response travels on.

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace parbounds::fleet {

/// First byte of a binary-encoded snapshot; never the first byte of a
/// text one.
inline constexpr char kSnapshotBinaryMagic = '\x01';

std::string encode_snapshot(const obs::MetricsSnapshot& snap);
std::string encode_snapshot_binary(const obs::MetricsSnapshot& snap);

/// Strict decode of either encoding (dispatched on the first byte); on
/// failure returns false and sets `err`. An empty string decodes to an
/// empty snapshot.
bool decode_snapshot(std::string_view wire, obs::MetricsSnapshot& out,
                     std::string& err);

}  // namespace parbounds::fleet
