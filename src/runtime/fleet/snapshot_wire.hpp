#pragma once
// Wire form of a MetricsSnapshot, carried inside cell responses
// (docs/SERVICE.md). JSON's to_json() is a one-way rendering — it drops
// the flat registration order merge_from() keys on — so the fleet ships
// snapshots in a trivially invertible line format instead:
//
//   c <name> <value>;g <name> <value>;h <name> <b1,b2,..> <c1,c2,..>;
//
// one record per metric, in registration order, every number a decimal
// u64. The format is strict the same way the service codec is: unknown
// record kinds, malformed numbers, bucket/bound arity mismatches and
// trailing bytes are all typed decode errors. Two workers running the
// same TelemetryObserver construction encode snapshots with identical
// record sequences, which is the precondition merge_from() checks.

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace parbounds::fleet {

std::string encode_snapshot(const obs::MetricsSnapshot& snap);

/// Strict decode; on failure returns false and sets `err`. An empty
/// string decodes to an empty snapshot.
bool decode_snapshot(std::string_view wire, obs::MetricsSnapshot& out,
                     std::string& err);

}  // namespace parbounds::fleet
