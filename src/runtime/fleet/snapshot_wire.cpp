#include "runtime/fleet/snapshot_wire.hpp"

#include <charconv>

namespace parbounds::fleet {

namespace {

void append_u64_list(std::string& out, const std::vector<std::uint64_t>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(v[i]);
  }
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const auto res = std::from_chars(text.data(), text.data() + text.size(),
                                   out);
  return res.ec == std::errc() && res.ptr == text.data() + text.size() &&
         !text.empty();
}

bool parse_u64_list(std::string_view text, std::vector<std::uint64_t>& out) {
  out.clear();
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    std::uint64_t v = 0;
    if (!parse_u64(text.substr(0, comma), v)) return false;
    out.push_back(v);
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
    if (text.empty()) return false;  // trailing comma
  }
  return !out.empty();
}

/// Split one record on single spaces into at most `max` fields.
std::size_t split_fields(std::string_view rec, std::string_view* fields,
                         std::size_t max) {
  std::size_t n = 0;
  while (n < max) {
    const std::size_t sp = rec.find(' ');
    if (sp == std::string_view::npos) {
      fields[n++] = rec;
      return rec.empty() && n == 1 ? 0 : n;
    }
    fields[n++] = rec.substr(0, sp);
    rec.remove_prefix(sp + 1);
  }
  return rec.empty() ? n : max + 1;  // leftover bytes = too many fields
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out += static_cast<char>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  out += static_cast<char>(v);
}

/// Minimal strict reader for the binary snapshot form (the service
/// codec has its own richer twin; a snapshot only needs these few).
struct SnapReader {
  std::string_view s;
  std::size_t pos = 0;

  bool get_u8(std::uint8_t& out) {
    if (pos >= s.size()) return false;
    out = static_cast<std::uint8_t>(s[pos++]);
    return true;
  }
  bool get_varint(std::uint64_t& out) {
    out = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (pos >= s.size()) return false;
      const auto b = static_cast<std::uint8_t>(s[pos++]);
      if (shift == 63 && (b & 0x7E) != 0) return false;
      out |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return true;
    }
    return false;
  }
  bool get_name(std::string& out) {
    std::uint64_t n = 0;
    if (!get_varint(n) || n == 0 || n > s.size() - pos) return false;
    out.assign(s.substr(pos, static_cast<std::size_t>(n)));
    pos += static_cast<std::size_t>(n);
    return true;
  }
};

bool decode_snapshot_binary(std::string_view wire, obs::MetricsSnapshot& out,
                            std::string& err) {
  SnapReader r{wire, 1};  // caller checked the magic byte
  std::uint64_t count = 0;
  const auto fail = [&](std::uint64_t record, const char* what) {
    err = "binary snapshot record " + std::to_string(record) + ": " + what;
    return false;
  };
  if (!r.get_varint(count) || count > wire.size())
    return fail(0, "malformed metric count");
  for (std::uint64_t i = 1; i <= count; ++i) {
    obs::MetricValue m;
    std::uint8_t kind = 0;
    if (!r.get_u8(kind) || kind > 2) return fail(i, "bad metric kind");
    if (!r.get_name(m.name)) return fail(i, "malformed metric name");
    switch (kind) {
      case 0:
        m.kind = obs::MetricKind::Counter;
        break;
      case 1:
        m.kind = obs::MetricKind::Gauge;
        break;
      default:
        m.kind = obs::MetricKind::Histogram;
        break;
    }
    if (m.kind == obs::MetricKind::Histogram) {
      std::uint64_t nbounds = 0;
      if (!r.get_varint(nbounds) || nbounds > wire.size())
        return fail(i, "malformed bounds count");
      for (std::uint64_t b = 0; b < nbounds; ++b) {
        std::uint64_t v = 0;
        if (!r.get_varint(v)) return fail(i, "truncated bounds");
        m.bounds.push_back(v);
      }
      for (std::uint64_t b = 0; b <= nbounds; ++b) {
        std::uint64_t v = 0;
        if (!r.get_varint(v)) return fail(i, "truncated counts");
        m.counts.push_back(v);
      }
    } else if (!r.get_varint(m.value)) {
      return fail(i, "truncated value");
    }
    out.metrics.push_back(std::move(m));
  }
  if (r.pos != wire.size())
    return fail(count, "trailing bytes after snapshot");
  return true;
}

}  // namespace

std::string encode_snapshot_binary(const obs::MetricsSnapshot& snap) {
  std::string out;
  out += kSnapshotBinaryMagic;
  put_varint(out, snap.metrics.size());
  for (const auto& m : snap.metrics) {
    switch (m.kind) {
      case obs::MetricKind::Counter:
        out += '\x00';
        break;
      case obs::MetricKind::Gauge:
        out += '\x01';
        break;
      case obs::MetricKind::Histogram:
        out += '\x02';
        break;
    }
    put_varint(out, m.name.size());
    out += m.name;
    if (m.kind == obs::MetricKind::Histogram) {
      put_varint(out, m.bounds.size());
      for (const std::uint64_t b : m.bounds) put_varint(out, b);
      for (const std::uint64_t c : m.counts) put_varint(out, c);
    } else {
      put_varint(out, m.value);
    }
  }
  return out;
}

std::string encode_snapshot(const obs::MetricsSnapshot& snap) {
  std::string out;
  for (const auto& m : snap.metrics) {
    switch (m.kind) {
      case obs::MetricKind::Counter:
        out += "c " + m.name + " " + std::to_string(m.value) + ";";
        break;
      case obs::MetricKind::Gauge:
        out += "g " + m.name + " " + std::to_string(m.value) + ";";
        break;
      case obs::MetricKind::Histogram:
        out += "h " + m.name + " ";
        append_u64_list(out, m.bounds);
        out += ' ';
        append_u64_list(out, m.counts);
        out += ';';
        break;
    }
  }
  return out;
}

bool decode_snapshot(std::string_view wire, obs::MetricsSnapshot& out,
                     std::string& err) {
  out.metrics.clear();
  if (!wire.empty() && wire[0] == kSnapshotBinaryMagic)
    return decode_snapshot_binary(wire, out, err);
  std::size_t record = 0;
  while (!wire.empty()) {
    ++record;
    const std::size_t semi = wire.find(';');
    if (semi == std::string_view::npos) {
      err = "snapshot record " + std::to_string(record) +
            ": missing ';' terminator";
      return false;
    }
    const std::string_view rec = wire.substr(0, semi);
    wire.remove_prefix(semi + 1);

    std::string_view fields[4];
    const std::size_t n = split_fields(rec, fields, 4);
    const auto fail = [&](const char* what) {
      err = "snapshot record " + std::to_string(record) + " '" +
            std::string(rec) + "': " + what;
      return false;
    };

    obs::MetricValue m;
    if (fields[0] == "c" || fields[0] == "g") {
      if (n != 3) return fail("expected 'c|g <name> <value>'");
      m.kind = fields[0] == "c" ? obs::MetricKind::Counter
                                : obs::MetricKind::Gauge;
      m.name.assign(fields[1]);
      if (m.name.empty()) return fail("empty metric name");
      if (!parse_u64(fields[2], m.value)) return fail("malformed value");
    } else if (fields[0] == "h") {
      if (n != 4) return fail("expected 'h <name> <bounds> <counts>'");
      m.kind = obs::MetricKind::Histogram;
      m.name.assign(fields[1]);
      if (m.name.empty()) return fail("empty metric name");
      if (!parse_u64_list(fields[2], m.bounds))
        return fail("malformed bounds");
      if (!parse_u64_list(fields[3], m.counts))
        return fail("malformed counts");
      if (m.counts.size() != m.bounds.size() + 1)
        return fail("counts must have bounds+1 buckets");
    } else {
      return fail("unknown record kind");
    }
    out.metrics.push_back(std::move(m));
  }
  return true;
}

}  // namespace parbounds::fleet
