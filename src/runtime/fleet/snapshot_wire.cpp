#include "runtime/fleet/snapshot_wire.hpp"

#include <charconv>

namespace parbounds::fleet {

namespace {

void append_u64_list(std::string& out, const std::vector<std::uint64_t>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(v[i]);
  }
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const auto res = std::from_chars(text.data(), text.data() + text.size(),
                                   out);
  return res.ec == std::errc() && res.ptr == text.data() + text.size() &&
         !text.empty();
}

bool parse_u64_list(std::string_view text, std::vector<std::uint64_t>& out) {
  out.clear();
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    std::uint64_t v = 0;
    if (!parse_u64(text.substr(0, comma), v)) return false;
    out.push_back(v);
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
    if (text.empty()) return false;  // trailing comma
  }
  return !out.empty();
}

/// Split one record on single spaces into at most `max` fields.
std::size_t split_fields(std::string_view rec, std::string_view* fields,
                         std::size_t max) {
  std::size_t n = 0;
  while (n < max) {
    const std::size_t sp = rec.find(' ');
    if (sp == std::string_view::npos) {
      fields[n++] = rec;
      return rec.empty() && n == 1 ? 0 : n;
    }
    fields[n++] = rec.substr(0, sp);
    rec.remove_prefix(sp + 1);
  }
  return rec.empty() ? n : max + 1;  // leftover bytes = too many fields
}

}  // namespace

std::string encode_snapshot(const obs::MetricsSnapshot& snap) {
  std::string out;
  for (const auto& m : snap.metrics) {
    switch (m.kind) {
      case obs::MetricKind::Counter:
        out += "c " + m.name + " " + std::to_string(m.value) + ";";
        break;
      case obs::MetricKind::Gauge:
        out += "g " + m.name + " " + std::to_string(m.value) + ";";
        break;
      case obs::MetricKind::Histogram:
        out += "h " + m.name + " ";
        append_u64_list(out, m.bounds);
        out += ' ';
        append_u64_list(out, m.counts);
        out += ';';
        break;
    }
  }
  return out;
}

bool decode_snapshot(std::string_view wire, obs::MetricsSnapshot& out,
                     std::string& err) {
  out.metrics.clear();
  std::size_t record = 0;
  while (!wire.empty()) {
    ++record;
    const std::size_t semi = wire.find(';');
    if (semi == std::string_view::npos) {
      err = "snapshot record " + std::to_string(record) +
            ": missing ';' terminator";
      return false;
    }
    const std::string_view rec = wire.substr(0, semi);
    wire.remove_prefix(semi + 1);

    std::string_view fields[4];
    const std::size_t n = split_fields(rec, fields, 4);
    const auto fail = [&](const char* what) {
      err = "snapshot record " + std::to_string(record) + " '" +
            std::string(rec) + "': " + what;
      return false;
    };

    obs::MetricValue m;
    if (fields[0] == "c" || fields[0] == "g") {
      if (n != 3) return fail("expected 'c|g <name> <value>'");
      m.kind = fields[0] == "c" ? obs::MetricKind::Counter
                                : obs::MetricKind::Gauge;
      m.name.assign(fields[1]);
      if (m.name.empty()) return fail("empty metric name");
      if (!parse_u64(fields[2], m.value)) return fail("malformed value");
    } else if (fields[0] == "h") {
      if (n != 4) return fail("expected 'h <name> <bounds> <counts>'");
      m.kind = obs::MetricKind::Histogram;
      m.name.assign(fields[1]);
      if (m.name.empty()) return fail("empty metric name");
      if (!parse_u64_list(fields[2], m.bounds))
        return fail("malformed bounds");
      if (!parse_u64_list(fields[3], m.counts))
        return fail("malformed counts");
      if (m.counts.size() != m.bounds.size() + 1)
        return fail("counts must have bounds+1 buckets");
    } else {
      return fail("unknown record kind");
    }
    out.metrics.push_back(std::move(m));
  }
  return true;
}

}  // namespace parbounds::fleet
