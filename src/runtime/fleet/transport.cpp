#include "runtime/fleet/transport.hpp"

#include <unistd.h>

#include <cerrno>

namespace parbounds::fleet {

bool write_all_fd(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool FdTransport::recv(std::string& payload) {
  for (;;) {
    switch (decoder_.next(payload)) {
      case service::FrameResult::Ok:
        return true;
      case service::FrameResult::TooLarge:
        eof_mid_frame_ = true;  // protocol error: same death signal
        return false;
      case service::FrameResult::NeedMore:
        break;
    }
    char buf[4096];
    const ssize_t n = ::read(rfd_, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      eof_mid_frame_ = true;
      return false;
    }
    if (n == 0) {
      eof_mid_frame_ = decoder_.mid_frame();
      return false;
    }
    decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

void FdTransport::send(const std::string& payload) {
  std::string frame;
  service::append_frame(frame, payload);
  if (!write_all_fd(wfd_, frame)) send_failed_ = true;
}

}  // namespace parbounds::fleet
