#include "runtime/fleet/transport.hpp"

#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace parbounds::fleet {

bool write_all_fd(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool FdTransport::recv(std::string& payload) {
  for (;;) {
    switch (decoder_.next(payload)) {
      case service::FrameResult::Ok:
        return true;
      case service::FrameResult::TooLarge:
        eof_mid_frame_ = true;  // protocol error: same death signal
        return false;
      case service::FrameResult::NeedMore:
        break;
    }
    char buf[4096];
    const ssize_t n = ::read(rfd_, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      eof_mid_frame_ = true;
      return false;
    }
    if (n == 0) {
      eof_mid_frame_ = decoder_.mid_frame();
      return false;
    }
    decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

void FdTransport::send(const std::string& payload) {
  frame_scratch_.clear();
  service::append_frame(frame_scratch_, payload, max_payload_);
  if (!write_all_fd(wfd_, frame_scratch_)) send_failed_ = true;
}

void WriteQueue::push(std::string_view payload, std::size_t max_payload) {
  std::string frame;
  if (!spare_.empty()) {
    frame = std::move(spare_.back());
    spare_.pop_back();
    frame.clear();
  }
  service::append_frame(frame, payload, max_payload);
  frames_.push_back(std::move(frame));
}

WriteQueue::Flush WriteQueue::flush(int fd, std::uint64_t& bytes_written,
                                    std::uint64_t& frames_written) {
  constexpr int kMaxIov = 16;
  while (!frames_.empty()) {
    struct iovec iov[kMaxIov];
    int iovn = 0;
    std::size_t off = front_off_;
    for (const std::string& f : frames_) {
      if (iovn == kMaxIov) break;
      iov[iovn].iov_base =
          const_cast<char*>(f.data() + off);  // writev API takes void*
      iov[iovn].iov_len = f.size() - off;
      ++iovn;
      off = 0;
    }
    const ssize_t n = ::writev(fd, iov, iovn);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Flush::Again;
      return Flush::Error;
    }
    bytes_written += static_cast<std::uint64_t>(n);
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0) {
      std::string& front = frames_.front();
      const std::size_t avail = front.size() - front_off_;
      if (left >= avail) {
        left -= avail;
        ++frames_written;
        spare_.push_back(std::move(front));
        frames_.pop_front();
        front_off_ = 0;
      } else {
        front_off_ += left;
        left = 0;
      }
    }
  }
  return Flush::Done;
}

void WriteQueue::clear() {
  while (!frames_.empty()) {
    spare_.push_back(std::move(frames_.front()));
    frames_.pop_front();
  }
  front_off_ = 0;
}

}  // namespace parbounds::fleet
