#include "runtime/fleet/coordinator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <utility>

#include "obs/span.hpp"
#include "runtime/fleet/partition.hpp"
#include "runtime/fleet/worker.hpp"

namespace parbounds::fleet {

namespace {

std::uint64_t steady_now_ns() {
  const auto now =
      // DETLINT(det.wall-clock): control-plane deadlines only; never a result
      std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

void close_quiet(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

/// Blocking read of one whole frame (the handshake ack; data-plane
/// reads go through the poll loop instead).
bool read_frame_blocking(int fd, service::FrameDecoder& decoder,
                         std::string& payload) {
  for (;;) {
    switch (decoder.next(payload)) {
      case service::FrameResult::Ok:
        return true;
      case service::FrameResult::TooLarge:
        return false;
      case service::FrameResult::NeedMore:
        break;
    }
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

}  // namespace

FleetCoordinator::FleetCoordinator(FleetConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.workers == 0)
    throw std::invalid_argument("fleet: workers must be >= 1");
  if (cfg_.max_attempts == 0)
    throw std::invalid_argument("fleet: max_attempts must be >= 1");
  if (cfg_.window == 0)
    throw std::invalid_argument("fleet: window must be >= 1");
  if (cfg_.wire == 0) cfg_.wire = wire_version_from_env();
  if (cfg_.wire > service::kWireVersionMax)
    throw std::invalid_argument("fleet: wire version " +
                                std::to_string(cfg_.wire) +
                                " is newer than this build speaks");
  if (cfg_.worker_exe.empty()) cfg_.worker_exe = "/proc/self/exe";

  spawn_id_ = metrics_.counter("fleet.worker.spawn");
  exit_id_ = metrics_.counter("fleet.worker.exit");
  retry_id_ = metrics_.counter("fleet.worker.retry");
  reassign_id_ = metrics_.counter("fleet.worker.reassign");
  bytes_tx_id_ = metrics_.counter("fleet.bytes_tx");
  bytes_rx_id_ = metrics_.counter("fleet.bytes_rx");
  frames_tx_id_ = metrics_.counter("fleet.frames_tx");
  frames_rx_id_ = metrics_.counter("fleet.frames_rx");
  window_depth_id_ = metrics_.gauge("fleet.window.depth");

  // A worker that dies between our poll() and our write() would
  // otherwise SIGPIPE the whole coordinator; the EPIPE return is the
  // signal we actually want.
  std::signal(SIGPIPE, SIG_IGN);

  // Workers read the shared-cache knobs from the environment (they are
  // exec'd with a single fd-token argument). Set before any fork so
  // every child inherits them.
  if (!cfg_.cache_dir.empty()) {
    ::setenv(kCacheDirEnv, cfg_.cache_dir.c_str(), 1);
    if (cfg_.cache_bytes > 0)
      ::setenv(kCacheBytesEnv, std::to_string(cfg_.cache_bytes).c_str(), 1);
  }

  workers_.resize(cfg_.workers);
  for (unsigned s = 0; s < cfg_.workers; ++s)
    if (!spawn(s))
      throw std::runtime_error("fleet: failed to spawn worker " +
                               std::to_string(s));
}

FleetCoordinator::~FleetCoordinator() {
  for (Worker& w : workers_) {
    if (!w.alive) continue;
    // A worker mid-request (abnormal teardown, e.g. run_requests threw)
    // may never look at its inbox again; don't wait on it.
    if (!w.inflight.empty()) ::kill(w.pid, SIGKILL);
    // Closing the request pipe is the shutdown signal: the worker's
    // next recv() sees clean EOF and exits 0.
    close_quiet(w.to_fd);
    close_quiet(w.from_fd);
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    w.alive = false;
  }
}

bool FleetCoordinator::spawn(unsigned slot) {
  int req[2] = {-1, -1};
  int resp[2] = {-1, -1};
  if (::pipe2(req, O_CLOEXEC) != 0) return false;
  if (::pipe2(resp, O_CLOEXEC) != 0) {
    close_quiet(req[0]);
    close_quiet(req[1]);
    return false;
  }

  char token[64];
  std::snprintf(token, sizeof token, "%s%u,%d,%d", kWorkerFlagPrefix, slot,
                req[0], resp[1]);

  const pid_t pid = ::fork();
  if (pid < 0) {
    close_quiet(req[0]);
    close_quiet(req[1]);
    close_quiet(resp[0]);
    close_quiet(resp[1]);
    return false;
  }
  if (pid == 0) {
    // Child. Unmask CLOEXEC on exactly this worker's two pipe ends;
    // every other descriptor — including sibling workers' pipes, whose
    // write ends held open here would defeat EOF crash detection —
    // closes on exec.
    ::fcntl(req[0], F_SETFD, 0);
    ::fcntl(resp[1], F_SETFD, 0);
    ::execl(cfg_.worker_exe.c_str(), cfg_.worker_exe.c_str(), token,
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed; parent sees EOF before any frame
  }

  close_quiet(req[0]);
  close_quiet(resp[1]);
  Worker& w = workers_[slot];
  w.pid = pid;
  w.to_fd = req[1];
  w.from_fd = resp[0];
  w.decoder = service::FrameDecoder();
  w.alive = true;
  w.queue.clear();
  w.inflight.clear();
  w.outq.clear();

  // Wire-version handshake before any work flows: offer our version,
  // block for the ack (the worker answers it immediately after exec,
  // long before any kernel runs). A malformed or out-of-range ack is a
  // stillborn worker.
  const auto abort_spawn = [&]() {
    ::kill(pid, SIGKILL);
    close_quiet(w.to_fd);
    close_quiet(w.from_fd);
    int status = 0;
    ::waitpid(pid, &status, 0);
    w.alive = false;
    return false;
  };
  std::string frame;
  service::append_frame(frame, kOfferPrefix + std::to_string(cfg_.wire));
  if (!write_all_fd(w.to_fd, frame)) return abort_spawn();
  std::string ack;
  unsigned acked = 0;
  if (!read_frame_blocking(w.from_fd, w.decoder, ack) ||
      !parse_handshake(ack, kAckPrefix, acked) || acked > cfg_.wire)
    return abort_spawn();
  w.wire = acked;

  // The data plane writes through a non-blocking fd so a full pipe
  // parks frames in the WriteQueue for the next POLLOUT instead of
  // stalling the whole poll loop.
  const int fl = ::fcntl(w.to_fd, F_GETFL);
  if (fl < 0 || ::fcntl(w.to_fd, F_SETFL, fl | O_NONBLOCK) < 0)
    return abort_spawn();

  metrics_.add(spawn_id_);
  obs::Span span(obs::process_tracer(), "fleet.spawn", slot);
  return true;
}

unsigned FleetCoordinator::alive_count() const {
  unsigned n = 0;
  for (const Worker& w : workers_)
    if (w.alive) ++n;
  return n;
}

std::uint64_t FleetCoordinator::counter(const std::string& name) const {
  const obs::MetricsSnapshot snap = metrics_.snapshot();
  const obs::MetricValue* m = snap.find(name);
  return m != nullptr ? m->value : 0;
}

std::vector<service::Response> FleetCoordinator::run_requests(
    std::vector<service::Request> reqs) {
  std::vector<service::Response> out(reqs.size());
  if (reqs.empty()) return out;
  obs::Span run_span(obs::process_tracer(), "fleet.run",
                     static_cast<std::uint64_t>(reqs.size()));

  const std::size_t n = reqs.size();
  const unsigned W = cfg_.workers;
  const std::uint64_t deadline_step =
      static_cast<std::uint64_t>(cfg_.request_deadline_ms) * 1000000u;
  std::vector<unsigned> attempts(n, 0);
  std::size_t remaining = n;

  unsigned rr = 0;  // round-robin cursor for redistribution
  auto next_alive = [&]() -> int {
    for (unsigned k = 0; k < W; ++k) {
      const unsigned s = (rr + k) % W;
      if (workers_[s].alive) {
        rr = (s + 1) % W;
        return static_cast<int>(s);
      }
    }
    return -1;
  };

  auto fleet_dead = [&]() {
    throw std::runtime_error("fleet: all workers dead with " +
                             std::to_string(remaining) +
                             " request(s) unfinished");
  };

  // Flush a worker's pending frames through writev; false = fatal
  // write error (worker died under us), EAGAIN just parks the rest for
  // the next POLLOUT.
  auto flush = [&](unsigned slot) -> bool {
    Worker& w = workers_[slot];
    std::uint64_t bytes = 0, frames = 0;
    const WriteQueue::Flush r = w.outq.flush(w.to_fd, bytes, frames);
    if (bytes > 0) metrics_.add(bytes_tx_id_, bytes);
    if (frames > 0) metrics_.add(frames_tx_id_, frames);
    return r != WriteQueue::Flush::Error;
  };

  // Fill a worker's credit window from its queue: every slot of credit
  // becomes an encoded frame in the out-queue, then one flush pushes
  // the whole burst. A sent index is parked in `inflight` before the
  // write, so the death path always sees it as an interrupted attempt.
  auto pump = [&](unsigned slot) -> bool {
    Worker& w = workers_[slot];
    if (!w.alive) return true;
    bool queued_any = false;
    while (w.inflight.size() < cfg_.window && !w.queue.empty()) {
      const std::size_t idx = w.queue.front();
      w.queue.pop_front();
      if (w.inflight.empty() && cfg_.request_deadline_ms > 0)
        w.head_deadline_ns = steady_now_ns() + deadline_step;
      w.inflight.push_back(idx);
      ++attempts[idx];
      if (w.wire >= service::kWireVersionBinary) {
        encode_scratch_.clear();
        service::encode_request_binary(reqs[idx], encode_scratch_);
      } else {
        encode_scratch_ = service::encode_request(reqs[idx]);
      }
      w.outq.push(encode_scratch_);
      queued_any = true;
    }
    if (queued_any)
      metrics_.record_max(window_depth_id_, w.inflight.size());
    return flush(slot);
  };

  // Reap a dead or wedged worker and redistribute its work: EVERY
  // request in its in-flight window is RETRIED (bounded by
  // max_attempts each — a credit window means a single crash can
  // interrupt up to `window` attempts at once), and its queued
  // requests are REASSIGNED, both round-robin onto surviving workers.
  std::function<void(unsigned)> on_death = [&](unsigned slot) {
    Worker& w = workers_[slot];
    if (!w.alive) return;
    w.alive = false;
    close_quiet(w.to_fd);
    close_quiet(w.from_fd);
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    metrics_.add(exit_id_);

    std::deque<std::size_t> interrupted = std::move(w.inflight);
    std::deque<std::size_t> queued = std::move(w.queue);
    w.inflight.clear();
    w.queue.clear();
    w.outq.clear();

    for (const std::size_t idx : interrupted) {
      if (attempts[idx] >= cfg_.max_attempts) {
        service::Response& r = out[idx];
        r.id = reqs[idx].id;
        r.status = service::Status::Error;
        r.error = "fleet: retry budget exhausted after " +
                  std::to_string(attempts[idx]) +
                  " attempts (worker crash or deadline)";
        --remaining;
        continue;
      }
      metrics_.add(retry_id_);
      obs::Span span(obs::process_tracer(), "fleet.retry",
                     static_cast<std::uint64_t>(idx));
      const int s = next_alive();
      if (s < 0) fleet_dead();
      workers_[static_cast<unsigned>(s)].queue.push_back(idx);
    }
    for (const std::size_t idx : queued) {
      metrics_.add(reassign_id_);
      const int s = next_alive();
      if (s < 0) fleet_dead();
      workers_[static_cast<unsigned>(s)].queue.push_back(idx);
    }
    for (unsigned s = 0; s < W; ++s)
      if (workers_[s].alive && !pump(s)) on_death(s);
  };

  // Drain every whole frame buffered for a worker. A worker is a
  // serial loop, so responses arrive in dispatch order: the head of
  // the in-flight window is the only id a well-behaved worker can
  // answer. Anything unexpected — an undecodable payload, a response
  // with any other id, an unsolicited frame — is a protocol violation
  // treated exactly like a crash.
  std::string payload;
  auto drain = [&](unsigned slot) {
    Worker& w = workers_[slot];
    while (w.alive) {
      const service::FrameResult fr = w.decoder.next(payload);
      if (fr == service::FrameResult::NeedMore) return;
      if (fr == service::FrameResult::TooLarge) {
        ::kill(w.pid, SIGKILL);
        on_death(slot);
        return;
      }
      metrics_.add(frames_rx_id_);
      service::Response resp;
      std::string err;
      const bool decoded =
          w.wire >= service::kWireVersionBinary
              ? service::decode_response_binary(payload, resp, err)
              : service::decode_response(payload, resp, err);
      if (!decoded || w.inflight.empty() ||
          resp.id != reqs[w.inflight.front()].id) {
        ::kill(w.pid, SIGKILL);
        on_death(slot);
        return;
      }
      const std::size_t idx = w.inflight.front();
      w.inflight.pop_front();
      // The next in-flight request is at the head now; its service
      // clock starts here, not at send time — with a full window a
      // request may legitimately sit behind `window - 1` others.
      if (!w.inflight.empty() && cfg_.request_deadline_ms > 0)
        w.head_deadline_ns = steady_now_ns() + deadline_step;
      out[idx] = std::move(resp);
      --remaining;
      if (!pump(slot)) {
        on_death(slot);
        return;
      }
    }
  };

  // ----- initial placement: the static partition --------------------------
  // owner_of() is a pure function of (total, configured width); a dead
  // slot's block is redistributed, which cannot change any response
  // byte — only where it is computed.
  for (std::size_t i = 0; i < n; ++i) {
    unsigned o = owner_of(static_cast<std::uint64_t>(n), W,
                          static_cast<std::uint64_t>(i));
    if (!workers_[o].alive) {
      const int s = next_alive();
      if (s < 0) fleet_dead();
      o = static_cast<unsigned>(s);
      metrics_.add(reassign_id_);
    }
    workers_[o].queue.push_back(i);
  }
  for (unsigned s = 0; s < W; ++s)
    if (!pump(s)) on_death(s);

  // ----- the poll loop -----------------------------------------------------
  while (remaining > 0) {
    std::vector<pollfd> fds;
    std::vector<unsigned> slot_of;
    for (unsigned s = 0; s < W; ++s) {
      const Worker& w = workers_[s];
      if (!w.alive) continue;
      if (!w.inflight.empty()) {
        fds.push_back(pollfd{w.from_fd, POLLIN, 0});
        slot_of.push_back(s);
      }
      if (!w.outq.empty()) {
        fds.push_back(pollfd{w.to_fd, POLLOUT, 0});
        slot_of.push_back(s);
      }
    }
    // Every unfinished request is either in flight or queued behind one
    // that is; no pollable worker with work remaining means the fleet
    // is gone.
    if (fds.empty()) fleet_dead();

    int timeout_ms = -1;
    if (cfg_.request_deadline_ms > 0) {
      const std::uint64_t now = steady_now_ns();
      std::uint64_t earliest = ~static_cast<std::uint64_t>(0);
      for (const unsigned s : slot_of)
        if (!workers_[s].inflight.empty() &&
            workers_[s].head_deadline_ns < earliest)
          earliest = workers_[s].head_deadline_ns;
      timeout_ms = earliest <= now
                       ? 0
                       : static_cast<int>((earliest - now) / 1000000u + 1);
    }

    const int pr = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                          timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("fleet: poll failed");
    }

    // Readable pipes first — a worker that answered in time must not
    // lose the race against its own deadline check below.
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const unsigned slot = slot_of[i];
      Worker& w = workers_[slot];
      if (!w.alive) continue;  // died in an earlier iteration's cascade
      if (fds[i].fd == w.to_fd) {
        // Room opened up in the request pipe: push the parked frames.
        if (!flush(slot)) on_death(slot);
        continue;
      }
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      char buf[65536];
      const ssize_t nread = ::read(w.from_fd, buf, sizeof buf);
      if (nread < 0) {
        if (errno == EINTR) continue;
        on_death(slot);
        continue;
      }
      if (nread == 0) {
        on_death(slot);  // EOF: crashed (mid-frame or between frames)
        continue;
      }
      metrics_.add(bytes_rx_id_, static_cast<std::uint64_t>(nread));
      w.decoder.feed(
          std::string_view(buf, static_cast<std::size_t>(nread)));
      drain(slot);
    }

    if (cfg_.request_deadline_ms > 0) {
      const std::uint64_t now = steady_now_ns();
      for (unsigned s = 0; s < W; ++s) {
        Worker& w = workers_[s];
        if (w.alive && !w.inflight.empty() && now >= w.head_deadline_ns) {
          ::kill(w.pid, SIGKILL);  // wedged: hung kernel or stuck worker
          on_death(s);
        }
      }
    }
  }
  return out;
}

}  // namespace parbounds::fleet
