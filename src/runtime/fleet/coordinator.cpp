#include "runtime/fleet/coordinator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <utility>

#include "obs/span.hpp"
#include "runtime/fleet/partition.hpp"
#include "runtime/fleet/transport.hpp"
#include "runtime/fleet/worker.hpp"

namespace parbounds::fleet {

namespace {

std::uint64_t steady_now_ns() {
  const auto now =
      // DETLINT(det.wall-clock): control-plane deadlines only; never a result
      std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

void close_quiet(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

}  // namespace

FleetCoordinator::FleetCoordinator(FleetConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.workers == 0)
    throw std::invalid_argument("fleet: workers must be >= 1");
  if (cfg_.max_attempts == 0)
    throw std::invalid_argument("fleet: max_attempts must be >= 1");
  if (cfg_.worker_exe.empty()) cfg_.worker_exe = "/proc/self/exe";

  spawn_id_ = metrics_.counter("fleet.worker.spawn");
  exit_id_ = metrics_.counter("fleet.worker.exit");
  retry_id_ = metrics_.counter("fleet.worker.retry");
  reassign_id_ = metrics_.counter("fleet.worker.reassign");

  // A worker that dies between our poll() and our write() would
  // otherwise SIGPIPE the whole coordinator; the EPIPE return is the
  // signal we actually want.
  std::signal(SIGPIPE, SIG_IGN);

  // Workers read the shared-cache knobs from the environment (they are
  // exec'd with a single fd-token argument). Set before any fork so
  // every child inherits them.
  if (!cfg_.cache_dir.empty()) {
    ::setenv(kCacheDirEnv, cfg_.cache_dir.c_str(), 1);
    if (cfg_.cache_bytes > 0)
      ::setenv(kCacheBytesEnv, std::to_string(cfg_.cache_bytes).c_str(), 1);
  }

  workers_.resize(cfg_.workers);
  for (unsigned s = 0; s < cfg_.workers; ++s)
    if (!spawn(s))
      throw std::runtime_error("fleet: failed to spawn worker " +
                               std::to_string(s));
}

FleetCoordinator::~FleetCoordinator() {
  for (Worker& w : workers_) {
    if (!w.alive) continue;
    // A worker mid-request (abnormal teardown, e.g. run_requests threw)
    // may never look at its inbox again; don't wait on it.
    if (w.inflight != kNone) ::kill(w.pid, SIGKILL);
    // Closing the request pipe is the shutdown signal: the worker's
    // next recv() sees clean EOF and exits 0.
    close_quiet(w.to_fd);
    close_quiet(w.from_fd);
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    w.alive = false;
  }
}

bool FleetCoordinator::spawn(unsigned slot) {
  int req[2] = {-1, -1};
  int resp[2] = {-1, -1};
  if (::pipe2(req, O_CLOEXEC) != 0) return false;
  if (::pipe2(resp, O_CLOEXEC) != 0) {
    close_quiet(req[0]);
    close_quiet(req[1]);
    return false;
  }

  char token[64];
  std::snprintf(token, sizeof token, "%s%u,%d,%d", kWorkerFlagPrefix, slot,
                req[0], resp[1]);

  const pid_t pid = ::fork();
  if (pid < 0) {
    close_quiet(req[0]);
    close_quiet(req[1]);
    close_quiet(resp[0]);
    close_quiet(resp[1]);
    return false;
  }
  if (pid == 0) {
    // Child. Unmask CLOEXEC on exactly this worker's two pipe ends;
    // every other descriptor — including sibling workers' pipes, whose
    // write ends held open here would defeat EOF crash detection —
    // closes on exec.
    ::fcntl(req[0], F_SETFD, 0);
    ::fcntl(resp[1], F_SETFD, 0);
    ::execl(cfg_.worker_exe.c_str(), cfg_.worker_exe.c_str(), token,
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed; parent sees EOF before any frame
  }

  close_quiet(req[0]);
  close_quiet(resp[1]);
  Worker& w = workers_[slot];
  w.pid = pid;
  w.to_fd = req[1];
  w.from_fd = resp[0];
  w.decoder = service::FrameDecoder();
  w.alive = true;
  w.inflight = kNone;
  metrics_.add(spawn_id_);
  obs::Span span(obs::process_tracer(), "fleet.spawn", slot);
  return true;
}

unsigned FleetCoordinator::alive_count() const {
  unsigned n = 0;
  for (const Worker& w : workers_)
    if (w.alive) ++n;
  return n;
}

std::uint64_t FleetCoordinator::counter(const std::string& name) const {
  const obs::MetricsSnapshot snap = metrics_.snapshot();
  const obs::MetricValue* m = snap.find(name);
  return m != nullptr ? m->value : 0;
}

std::vector<service::Response> FleetCoordinator::run_requests(
    std::vector<service::Request> reqs) {
  std::vector<service::Response> out(reqs.size());
  if (reqs.empty()) return out;
  obs::Span run_span(obs::process_tracer(), "fleet.run",
                     static_cast<std::uint64_t>(reqs.size()));

  const std::size_t n = reqs.size();
  const unsigned W = cfg_.workers;
  std::vector<unsigned> attempts(n, 0);
  std::size_t remaining = n;

  unsigned rr = 0;  // round-robin cursor for redistribution
  auto next_alive = [&]() -> int {
    for (unsigned k = 0; k < W; ++k) {
      const unsigned s = (rr + k) % W;
      if (workers_[s].alive) {
        rr = (s + 1) % W;
        return static_cast<int>(s);
      }
    }
    return -1;
  };

  auto fleet_dead = [&]() {
    throw std::runtime_error("fleet: all workers dead with " +
                             std::to_string(remaining) +
                             " request(s) unfinished");
  };

  // Send the head of an idle live worker's queue; false = the write
  // failed (worker died under us) and the caller must run on_death.
  // The sent index is parked in `inflight` either way, so the death
  // path sees it as an interrupted attempt.
  auto pump = [&](unsigned slot) -> bool {
    Worker& w = workers_[slot];
    if (!w.alive || w.inflight != kNone || w.queue.empty()) return true;
    const std::size_t idx = w.queue.front();
    w.queue.pop_front();
    w.inflight = idx;
    ++attempts[idx];
    if (cfg_.request_deadline_ms > 0)
      w.deadline_ns =
          steady_now_ns() +
          static_cast<std::uint64_t>(cfg_.request_deadline_ms) * 1000000u;
    std::string frame;
    service::append_frame(frame, service::encode_request(reqs[idx]));
    return write_all_fd(w.to_fd, frame);
  };

  // Reap a dead or wedged worker and redistribute its work: the
  // interrupted in-flight request is RETRIED (bounded by max_attempts),
  // its queued requests are REASSIGNED, both onto surviving workers.
  std::function<void(unsigned)> on_death = [&](unsigned slot) {
    Worker& w = workers_[slot];
    if (!w.alive) return;
    w.alive = false;
    close_quiet(w.to_fd);
    close_quiet(w.from_fd);
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    metrics_.add(exit_id_);

    std::deque<std::size_t> queued = std::move(w.queue);
    w.queue.clear();
    const std::size_t interrupted = w.inflight;
    w.inflight = kNone;

    if (interrupted != kNone) {
      if (attempts[interrupted] >= cfg_.max_attempts) {
        service::Response& r = out[interrupted];
        r.id = reqs[interrupted].id;
        r.status = service::Status::Error;
        r.error = "fleet: retry budget exhausted after " +
                  std::to_string(attempts[interrupted]) +
                  " attempts (worker crash or deadline)";
        --remaining;
      } else {
        metrics_.add(retry_id_);
        obs::Span span(obs::process_tracer(), "fleet.retry",
                       static_cast<std::uint64_t>(interrupted));
        const int s = next_alive();
        if (s < 0) fleet_dead();
        workers_[static_cast<unsigned>(s)].queue.push_front(interrupted);
        if (!pump(static_cast<unsigned>(s)))
          on_death(static_cast<unsigned>(s));
      }
    }
    for (const std::size_t idx : queued) {
      metrics_.add(reassign_id_);
      const int s = next_alive();
      if (s < 0) fleet_dead();
      workers_[static_cast<unsigned>(s)].queue.push_back(idx);
      if (!pump(static_cast<unsigned>(s))) on_death(static_cast<unsigned>(s));
    }
  };

  // Drain every whole frame buffered for a worker. Lock-step means at
  // most one response is in flight; anything unexpected — an undecodable
  // payload, a response with the wrong id, an unsolicited frame — is a
  // protocol violation treated exactly like a crash.
  auto drain = [&](unsigned slot) {
    Worker& w = workers_[slot];
    std::string payload;
    while (w.alive) {
      const service::FrameResult fr = w.decoder.next(payload);
      if (fr == service::FrameResult::NeedMore) return;
      if (fr == service::FrameResult::TooLarge) {
        ::kill(w.pid, SIGKILL);
        on_death(slot);
        return;
      }
      service::Response resp;
      std::string err;
      if (!service::decode_response(payload, resp, err) ||
          w.inflight == kNone || resp.id != reqs[w.inflight].id) {
        ::kill(w.pid, SIGKILL);
        on_death(slot);
        return;
      }
      const std::size_t idx = w.inflight;
      w.inflight = kNone;
      out[idx] = std::move(resp);
      --remaining;
      if (!pump(slot)) on_death(slot);
    }
  };

  // ----- initial placement: the static partition --------------------------
  // owner_of() is a pure function of (total, configured width); a dead
  // slot's block is redistributed, which cannot change any response
  // byte — only where it is computed.
  for (std::size_t i = 0; i < n; ++i) {
    unsigned o = owner_of(static_cast<std::uint64_t>(n), W,
                          static_cast<std::uint64_t>(i));
    if (!workers_[o].alive) {
      const int s = next_alive();
      if (s < 0) fleet_dead();
      o = static_cast<unsigned>(s);
      metrics_.add(reassign_id_);
    }
    workers_[o].queue.push_back(i);
  }
  for (unsigned s = 0; s < W; ++s)
    if (!pump(s)) on_death(s);

  // ----- the poll loop -----------------------------------------------------
  while (remaining > 0) {
    std::vector<pollfd> fds;
    std::vector<unsigned> slot_of;
    for (unsigned s = 0; s < W; ++s) {
      const Worker& w = workers_[s];
      if (w.alive && w.inflight != kNone) {
        fds.push_back(pollfd{w.from_fd, POLLIN, 0});
        slot_of.push_back(s);
      }
    }
    // Every unfinished request is either in flight or queued behind one
    // that is; no pollable worker with work remaining means the fleet
    // is gone.
    if (fds.empty()) fleet_dead();

    int timeout_ms = -1;
    if (cfg_.request_deadline_ms > 0) {
      const std::uint64_t now = steady_now_ns();
      std::uint64_t earliest = ~static_cast<std::uint64_t>(0);
      for (const unsigned s : slot_of)
        if (workers_[s].deadline_ns < earliest)
          earliest = workers_[s].deadline_ns;
      timeout_ms = earliest <= now
                       ? 0
                       : static_cast<int>((earliest - now) / 1000000u + 1);
    }

    const int pr = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                          timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("fleet: poll failed");
    }

    // Readable pipes first — a worker that answered in time must not
    // lose the race against its own deadline check below.
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const unsigned slot = slot_of[i];
      Worker& w = workers_[slot];
      if (!w.alive) continue;  // died in an earlier iteration's cascade
      char buf[65536];
      const ssize_t nread = ::read(w.from_fd, buf, sizeof buf);
      if (nread < 0) {
        if (errno == EINTR) continue;
        on_death(slot);
        continue;
      }
      if (nread == 0) {
        on_death(slot);  // EOF: crashed (mid-frame or between frames)
        continue;
      }
      w.decoder.feed(
          std::string_view(buf, static_cast<std::size_t>(nread)));
      drain(slot);
    }

    if (cfg_.request_deadline_ms > 0) {
      const std::uint64_t now = steady_now_ns();
      for (const unsigned s : slot_of) {
        Worker& w = workers_[s];
        if (w.alive && w.inflight != kNone && now >= w.deadline_ns) {
          ::kill(w.pid, SIGKILL);  // wedged: hung kernel or stuck worker
          on_death(s);
        }
      }
    }
  }
  return out;
}

}  // namespace parbounds::fleet
