#include "runtime/fleet/sweep_fleet.hpp"

#include <stdexcept>
#include <utility>

#include "runtime/fleet/snapshot_wire.hpp"

namespace parbounds::fleet {

runtime::SweepResult run_sweep_fleet(FleetCoordinator& fleet,
                                     std::string title,
                                     std::uint64_t base_seed,
                                     std::vector<runtime::SweepCell> cells,
                                     obs::MetricsSnapshot* telemetry) {
  std::vector<std::uint64_t> trial0(cells.size(), 0);
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (!cells[c].spec.routable())
      throw std::runtime_error("cell '" + cells[c].key +
                               "' has no service spec; --workers needs "
                               "every cell to be registry-routable");
    if (cells[c].trials == 0)
      throw std::runtime_error("cell '" + cells[c].key +
                               "' has zero trials");
    trial0[c] = total;
    total += cells[c].trials;
  }

  std::vector<service::Request> reqs(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    service::Request& r = reqs[c];
    r.id = static_cast<std::uint64_t>(c);
    r.op = service::Op::Cell;
    r.spec = cells[c].spec;
    r.seed = base_seed;  // workers derive per-repetition seeds
    r.trial0 = trial0[c];
    r.trials = cells[c].trials;
  }

  const std::vector<service::Response> resps =
      fleet.run_requests(std::move(reqs));

  std::vector<double> costs(total, 0.0);
  bool have_snapshot = false;
  if (telemetry != nullptr) *telemetry = obs::MetricsSnapshot();
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const service::Response& resp = resps[c];
    if (resp.status != service::Status::Ok)
      throw std::runtime_error("cell '" + cells[c].key + "': " + resp.error);
    if (resp.costs.size() != cells[c].trials)
      throw std::runtime_error(
          "cell '" + cells[c].key + "': expected " +
          std::to_string(cells[c].trials) + " costs, got " +
          std::to_string(resp.costs.size()));
    for (std::size_t r = 0; r < resp.costs.size(); ++r)
      costs[trial0[c] + r] = resp.costs[r];
    if (telemetry != nullptr) {
      if (resp.telemetry.empty())
        throw std::runtime_error("cell '" + cells[c].key +
                                 "': response carried no telemetry");
      obs::MetricsSnapshot snap;
      std::string err;
      if (!decode_snapshot(resp.telemetry, snap, err))
        throw std::runtime_error("cell '" + cells[c].key +
                                 "': bad telemetry wire: " + err);
      if (!have_snapshot) {
        *telemetry = std::move(snap);
        have_snapshot = true;
      } else {
        telemetry->merge_from(snap);
      }
    }
  }

  runtime::SweepResult out;
  out.title = std::move(title);
  out.base_seed = base_seed;
  out.cells = aggregate_cells(cells, costs);
  return out;
}

}  // namespace parbounds::fleet
