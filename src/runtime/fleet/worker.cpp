#include "runtime/fleet/worker.hpp"

#include <csignal>
#include <unistd.h>

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "runtime/fleet/snapshot_wire.hpp"
#include "runtime/fleet/transport.hpp"
#include "runtime/harness_flags.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/runner.hpp"
#include "runtime/sweep_service/cache.hpp"
#include "runtime/sweep_service/registry.hpp"

namespace parbounds::fleet {

namespace {

std::string cost_text(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// "W:K" fault knob: fires when worker W handles its K-th work request.
struct FaultKnob {
  bool armed = false;
  unsigned worker = 0;
  std::uint64_t ordinal = 0;

  static FaultKnob parse(const char* text) {
    FaultKnob k;
    if (text == nullptr) return k;
    const std::string s = text;
    const std::size_t colon = s.find(':');
    if (colon == std::string::npos) return k;
    char* end = nullptr;
    k.worker = static_cast<unsigned>(
        std::strtoul(s.c_str(), &end, 10));
    if (end != s.c_str() + colon) return k;
    k.ordinal = std::strtoull(s.c_str() + colon + 1, &end, 10);
    if (*end != '\0' || k.ordinal == 0) return k;
    k.armed = true;
    return k;
  }

  bool fires(unsigned index, std::uint64_t seen) const {
    return armed && worker == index && seen == ordinal;
  }
};

service::Response run_one(const service::Request& req) {
  service::Response resp;
  resp.id = req.id;
  double cost = 0.0;
  std::string err;
  try {
    if (service::run_spec(req.spec, req.seed, cost, err)) {
      resp.has_cost = true;
      resp.cost = cost;
    } else {
      resp.status = service::Status::Error;
      resp.error = err;
    }
  } catch (const std::exception& e) {
    resp.status = service::Status::Error;
    resp.error = e.what();
  }
  return resp;
}

service::Response run_cell(const service::Request& req,
                           service::ResultCache* cache, unsigned wire) {
  service::Response resp;
  resp.id = req.id;

  std::string key;
  if (cache != nullptr) {
    key = service::cache_key(req);
    std::string payload;
    if (cache->fetch(key, payload) == service::FetchResult::Hit &&
        decode_cell_payload(payload, resp.costs, resp.telemetry) &&
        resp.costs.size() == req.trials) {
      resp.cached = true;
      return resp;
    }
    resp.costs.clear();
    resp.telemetry.clear();
  }

  // Fresh per-cell telemetry: the snapshot shipped with this response
  // covers exactly this cell's phases, so the coordinator can merge
  // one snapshot per cell regardless of which worker (or retry
  // attempt) produced it.
  obs::MetricsRegistry registry;
  obs::TelemetryObserver telemetry(registry);
  obs::install_process_telemetry(&telemetry);
  for (std::uint64_t r = 0; r < req.trials; ++r) {
    double cost = 0.0;
    std::string err;
    bool ok = false;
    try {
      ok = service::run_spec(
          req.spec, runtime::derive_seed(req.seed, req.trial0 + r), cost,
          err);
    } catch (const std::exception& e) {
      err = e.what();
    }
    if (!ok) {
      obs::install_process_telemetry(nullptr);
      resp.costs.clear();
      resp.status = service::Status::Error;
      resp.error = err.empty() ? "cell execution failed" : err;
      return resp;
    }
    resp.costs.push_back(cost);
  }
  obs::install_process_telemetry(nullptr);
  // The wire carries the negotiated snapshot form; the shared cache
  // always stores the canonical TEXT form so a cell cached under one
  // wire mode replays byte-compatibly under the other (decode_snapshot
  // dispatches on the payload itself).
  const obs::MetricsSnapshot snap = registry.snapshot();
  const std::string text_wire = encode_snapshot(snap);
  resp.telemetry = wire >= service::kWireVersionBinary
                       ? encode_snapshot_binary(snap)
                       : text_wire;

  if (cache != nullptr)
    cache->insert(key, encode_cell_payload(resp.costs, text_wire));
  return resp;
}

}  // namespace

std::string encode_cell_payload(const std::vector<double>& costs,
                                const std::string& telemetry) {
  std::string out;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (i > 0) out += ',';
    out += cost_text(costs[i]);
  }
  out += '\n';
  out += telemetry;
  return out;
}

bool decode_cell_payload(std::string_view payload,
                         std::vector<double>& costs,
                         std::string& telemetry) {
  costs.clear();
  telemetry.clear();
  const std::size_t eol = payload.find('\n');
  if (eol == std::string_view::npos) return false;
  std::string_view list = payload.substr(0, eol);
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    const std::string_view text = list.substr(0, comma);
    double v = 0.0;
    const auto res =
        std::from_chars(text.data(), text.data() + text.size(), v);
    if (res.ec != std::errc() || res.ptr != text.data() + text.size() ||
        text.empty())
      return false;
    costs.push_back(v);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
    if (list.empty()) return false;  // trailing comma
  }
  if (costs.empty()) return false;
  telemetry.assign(payload.substr(eol + 1));
  return true;
}

bool parse_handshake(std::string_view payload, std::string_view prefix,
                     unsigned& version) {
  if (payload.substr(0, prefix.size()) != prefix) return false;
  const std::string rest(payload.substr(prefix.size()));
  char* end = nullptr;
  const unsigned long v = std::strtoul(rest.c_str(), &end, 10);
  if (end == rest.c_str() || *end != '\0' || v == 0) return false;
  version = static_cast<unsigned>(v);
  return true;
}

unsigned wire_version_from_env() {
  const char* text = std::getenv(kWireEnv);
  if (text == nullptr || text[0] == '\0')
    return service::kWireVersionBinary;
  const std::string value = text;
  if (value == "binary") return service::kWireVersionBinary;
  if (value == "text") return service::kWireVersionText;
  const char* suggestion =
      runtime::edit_distance(value, "text") <=
              runtime::edit_distance(value, "binary")
          ? "text"
          : "binary";
  throw std::invalid_argument(std::string(kWireEnv) + "='" + value +
                              "': unknown wire mode; did you mean '" +
                              suggestion + "'? (valid: text, binary)");
}

int worker_main(unsigned index, int rfd, int wfd) {
  // Trials execute serially inside a worker — parallelism is the fleet
  // width. Pinning the pool keeps the worker single-threaded (model
  // costs and telemetry are pool-invariant anyway, per the PR 5
  // shard-equivalence oracle).
  runtime::ParallelFor::pool().set_threads(1);

  std::unique_ptr<service::ResultCache> cache;
  if (const char* dir = std::getenv(kCacheDirEnv); dir != nullptr &&
                                                   dir[0] != '\0') {
    service::CacheConfig cfg;
    cfg.dir = dir;
    if (const char* bytes = std::getenv(kCacheBytesEnv); bytes != nullptr) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(bytes, &end, 10);
      if (end != bytes && *end == '\0' && v > 0) cfg.max_bytes = v;
    }
    cache = std::make_unique<service::ResultCache>(std::move(cfg));
  }

  const FaultKnob crash = FaultKnob::parse(std::getenv(kCrashEnv));
  const FaultKnob hang = FaultKnob::parse(std::getenv(kHangEnv));
  std::uint64_t work_seen = 0;

  FdTransport transport(rfd, wfd);

  // Handshake: the coordinator's first frame MUST be a wire offer; the
  // ack carries the newest version this build speaks, capped by the
  // offer. Worker and coordinator are the same binary today, but the
  // negotiation is the seam a multi-host fleet with version skew will
  // lean on.
  std::string payload;
  if (!transport.recv(payload)) return 0;  // coordinator gone already
  unsigned offered = 0;
  if (!parse_handshake(payload, kOfferPrefix, offered)) {
    std::fprintf(stderr, "fleet worker %u: malformed wire offer\n", index);
    return 2;
  }
  const unsigned wire = std::min(offered, service::kWireVersionMax);
  transport.send(kAckPrefix + std::to_string(wire));
  if (transport.send_failed()) return 1;
  const bool binary = wire >= service::kWireVersionBinary;

  // Encode in the negotiated codec. A NaN cost makes the binary
  // encoder throw; answer with a typed error in-band rather than dying
  // and burning the coordinator's retry budget on a deterministic
  // failure.
  const auto wire_encode = [&](const service::Response& resp) {
    try {
      return binary ? service::encode_response_binary(resp)
                    : service::encode_response(resp);
    } catch (const std::exception& e) {
      service::Response err_resp;
      err_resp.id = resp.id;
      err_resp.status = service::Status::Error;
      err_resp.error = e.what();
      return binary ? service::encode_response_binary(err_resp)
                    : service::encode_response(err_resp);
    }
  };

  while (transport.recv(payload)) {
    service::Request req;
    std::string err;
    service::Response resp;
    const bool decoded =
        binary ? service::decode_request_binary(payload, req, err)
               : service::decode_request(payload, req, err);
    if (!decoded) {
      resp.status = service::Status::Error;
      resp.error = err;
      transport.send(wire_encode(resp));
      continue;
    }
    switch (req.op) {
      case service::Op::Run:
      case service::Op::Cell:
        ++work_seen;
        if (crash.fires(index, work_seen)) std::raise(SIGKILL);
        if (hang.fires(index, work_seen))
          for (;;) ::pause();  // deadline-test limbo; killed by parent
        resp = req.op == service::Op::Run
                   ? run_one(req)
                   : run_cell(req, cache.get(), wire);
        break;
      case service::Op::Ping:
        resp.id = req.id;
        break;
      case service::Op::Stats:
        resp.id = req.id;
        resp.status = service::Status::Error;
        resp.error = "fleet workers serve no stats op";
        break;
      case service::Op::Shutdown:
        resp.id = req.id;
        transport.send(wire_encode(resp));
        return 0;
    }
    transport.send(wire_encode(resp));
    if (transport.send_failed()) return 1;  // coordinator gone
  }
  return 0;  // clean EOF: coordinator closed our inbox
}

bool parse_worker_token(std::string_view token, unsigned& index, int& rfd,
                        int& wfd) {
  const std::string_view prefix = kWorkerFlagPrefix;
  if (token.substr(0, prefix.size()) != prefix) return false;
  const std::string rest(token.substr(prefix.size()));
  unsigned long vals[3] = {0, 0, 0};
  const char* p = rest.c_str();
  for (int i = 0; i < 3; ++i) {
    char* end = nullptr;
    vals[i] = std::strtoul(p, &end, 10);
    if (end == p) return false;
    if (i < 2) {
      if (*end != ',') return false;
      p = end + 1;
    } else if (*end != '\0') {
      return false;
    }
  }
  index = static_cast<unsigned>(vals[0]);
  rfd = static_cast<int>(vals[1]);
  wfd = static_cast<int>(vals[2]);
  return true;
}

void maybe_run_worker(int argc, char** argv) {
  if (argc < 2) return;
  const std::string_view arg = argv[1];
  if (arg.substr(0, std::string_view(kWorkerFlagPrefix).size()) !=
      kWorkerFlagPrefix)
    return;
  unsigned index = 0;
  int rfd = -1, wfd = -1;
  if (!parse_worker_token(arg, index, rfd, wfd)) {
    std::fprintf(stderr, "fleet: malformed worker token '%s'\n", argv[1]);
    std::exit(2);
  }
  std::exit(worker_main(index, rfd, wfd));
}

}  // namespace parbounds::fleet
