#pragma once
// Fleet-backed sweep execution: the drop-in replacement for
// runtime::run_sweep that the bench harness uses under --workers N.
// Each CELL becomes one cell request — base seed plus the cell's
// trial0 offset into the concatenated trial list — so workers derive
// exactly the seeds run_sweep would have used, and the responses'
// per-repetition costs are aggregated through the same
// aggregate_cells. Identical seeds in, identical kernels underneath,
// identical aggregation out: the merged report is byte-identical to an
// in-process --jobs 1 run at any worker count, including after worker
// crashes (the coordinator retries lost cells; cells are pure
// functions of their request).
//
// Telemetry reassembly: every cell response carries the snapshot of a
// registry that observed exactly that cell (worker.hpp). Folding those
// snapshots with MetricsSnapshot::merge_from — commutative, associative
// — reproduces the cumulative metrics block a single process would
// have written, regardless of placement, retries, or cache hits. The
// one caveat is the commit.merge_ns wall-clock exception (docs/PERF.md):
// phases at or above the shard threshold feed measured nanoseconds into
// that histogram, so metrics byte-identity holds for sub-threshold
// phases only (docs/SERVICE.md#fleet).

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/fleet/coordinator.hpp"
#include "runtime/sweep.hpp"

namespace parbounds::fleet {

/// Execute `cells` across the fleet. Every cell must be
/// registry-routable and have trials >= 1, or this throws (a silent
/// closure fallback would defeat the byte-identity contract). Error
/// responses throw with the cell key. When `telemetry` is non-null the
/// per-cell snapshots are merged into it (it is overwritten). Timing
/// fields are left 0: fleet reports are cost-only.
runtime::SweepResult run_sweep_fleet(FleetCoordinator& fleet,
                                     std::string title,
                                     std::uint64_t base_seed,
                                     std::vector<runtime::SweepCell> cells,
                                     obs::MetricsSnapshot* telemetry);

}  // namespace parbounds::fleet
