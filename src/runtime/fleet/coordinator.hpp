#pragma once
// FleetCoordinator — the parent half of the sweep fleet
// (docs/SERVICE.md). It fork/execs N copies of the host binary as
// workers (worker.hpp), streams requests and responses over per-worker
// pipe pairs using the service frame codec, and returns responses in
// request order.
//
// Placement follows the static partition (partition.hpp): request i is
// initially assigned to owner_of(total, workers, i). Each worker runs
// lock-step — one request in flight at a time — so the fleet's
// parallelism is its width, pipes never fill, and the coordinator
// stays a single poll() loop on the caller's thread (no coordinator
// threads to sanitize).
//
// Failure handling. Three signals mean a dead or wedged worker: its
// response pipe reaches EOF (clean or mid-frame — a crash leaves a
// partial frame), a write to its request pipe fails, or its in-flight
// request exceeds the per-request deadline (the worker is then
// SIGKILLed). On death the worker is reaped (exit status collected),
// its in-flight request is RETRIED on a surviving worker — bounded by
// max_attempts per request — and its queued requests are REASSIGNED
// round-robin over survivors. Requests are pure functions of their
// content, so a retried request returns the same bytes any attempt
// would have; a typed Error response from a live worker is final and
// never retried (it is deterministic too). When every worker is dead
// and work remains, run_requests throws.
//
// Observability: a private MetricsRegistry (the SweepService
// discipline — never the bench session's, so fleet reports carry
// exactly the in-process metric families) with counters
// fleet.worker.spawn / fleet.worker.exit / fleet.worker.retry /
// fleet.worker.reassign, plus fleet.run / fleet.spawn / fleet.retry
// spans through the process tracer.

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/sweep_service/protocol.hpp"

namespace parbounds::fleet {

struct FleetConfig {
  unsigned workers = 1;
  /// Worker executable; empty = /proc/self/exe (re-exec the host
  /// binary, whose main() must call maybe_run_worker first).
  std::string worker_exe;
  /// Shared content-addressed cell cache directory, exported to the
  /// workers' environment; empty = no cache.
  std::string cache_dir;
  std::uint64_t cache_bytes = 0;  ///< cache bound; 0 = library default
  /// Execution attempts per request before it becomes a typed error.
  unsigned max_attempts = 3;
  /// Per-request deadline in milliseconds; a worker that exceeds it is
  /// SIGKILLed and its request retried. 0 disables the deadline.
  int request_deadline_ms = 0;
};

class FleetCoordinator {
 public:
  explicit FleetCoordinator(FleetConfig cfg);
  ~FleetCoordinator();  ///< shuts down (or kills) every live worker

  FleetCoordinator(const FleetCoordinator&) = delete;
  FleetCoordinator& operator=(const FleetCoordinator&) = delete;

  /// Drive every request to a final response (Ok or Error), in request
  /// order. Callable repeatedly; workers persist across calls. Throws
  /// std::runtime_error only when the fleet itself is unusable (all
  /// workers dead with work outstanding).
  std::vector<service::Response> run_requests(
      std::vector<service::Request> reqs);

  unsigned workers() const { return cfg_.workers; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// Convenience: current value of one fleet.* counter.
  std::uint64_t counter(const std::string& name) const;

 private:
  struct Worker {
    pid_t pid = -1;
    int to_fd = -1;    ///< coordinator -> worker requests
    int from_fd = -1;  ///< worker -> coordinator responses
    service::FrameDecoder decoder;
    bool alive = false;
    std::deque<std::size_t> queue;  ///< assigned request indices
    std::size_t inflight = kNone;
    std::uint64_t deadline_ns = 0;  ///< steady-ns; valid while inflight
  };
  static constexpr std::size_t kNone = ~static_cast<std::size_t>(0);

  bool spawn(unsigned slot);
  unsigned alive_count() const;

  FleetConfig cfg_;
  obs::MetricsRegistry metrics_;
  obs::MetricsRegistry::Id spawn_id_, exit_id_, retry_id_, reassign_id_;
  std::vector<Worker> workers_;
};

}  // namespace parbounds::fleet
