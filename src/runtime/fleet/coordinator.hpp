#pragma once
// FleetCoordinator — the parent half of the sweep fleet
// (docs/SERVICE.md). It fork/execs N copies of the host binary as
// workers (worker.hpp), streams requests and responses over per-worker
// pipe pairs using the service frame codec, and returns responses in
// request order.
//
// Placement follows the static partition (partition.hpp): request i is
// initially assigned to owner_of(total, workers, i). Each worker holds
// a CREDIT WINDOW of up to `window` requests in flight (default 8), so
// a small-cell sweep pays one pipe round-trip per WINDOW instead of
// one per cell — the BSP lesson (PAPER.md) that latency `L` charges
// per superstep, not per message. Workers answer strictly in dispatch
// order (a worker is a serial loop), and responses land in `out` by
// request index — the partition placement — never by arrival order, so
// windowing cannot change a single report byte. The coordinator stays
// a single poll() loop on the caller's thread (no coordinator threads
// to sanitize); request pipes are non-blocking and pending frames are
// batched through one writev(2) per poll iteration (transport.hpp
// WriteQueue), with buffers recycled rather than reallocated.
//
// At spawn the pair negotiates a wire version (worker.hpp handshake):
// v1 JSON text or the v2 binary codec, chosen by FleetConfig::wire or
// PARBOUNDS_FLEET_WIRE. Both wires produce byte-identical reports;
// test_fleet diffs them the way the SIMD dispatch-equivalence oracle
// diffs kernels.
//
// Failure handling. Three signals mean a dead or wedged worker: its
// response pipe reaches EOF (clean or mid-frame — a crash leaves a
// partial frame), a write to its request pipe fails, or the HEAD of
// its in-flight window exceeds the per-request deadline (the worker is
// then SIGKILLed). On death the worker is reaped (exit status
// collected), EVERY in-flight request of its window is RETRIED on
// surviving workers — bounded by max_attempts per request — and its
// queued requests are REASSIGNED round-robin over survivors. Requests
// are pure functions of their content, so a retried request returns
// the same bytes any attempt would have; a typed Error response from a
// live worker is final and never retried (it is deterministic too).
// When every worker is dead and work remains, run_requests throws.
//
// Observability: a private MetricsRegistry (the SweepService
// discipline — never the bench session's, so fleet reports carry
// exactly the in-process metric families) with counters
// fleet.worker.spawn / fleet.worker.exit / fleet.worker.retry /
// fleet.worker.reassign, data-plane traffic counters fleet.bytes_tx /
// fleet.bytes_rx / fleet.frames_tx / fleet.frames_rx, a
// fleet.window.depth high-water gauge (deepest in-flight window
// observed), plus fleet.run / fleet.spawn / fleet.retry spans through
// the process tracer.

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/fleet/transport.hpp"
#include "runtime/sweep_service/protocol.hpp"

namespace parbounds::fleet {

struct FleetConfig {
  unsigned workers = 1;
  /// Worker executable; empty = /proc/self/exe (re-exec the host
  /// binary, whose main() must call maybe_run_worker first).
  std::string worker_exe;
  /// Shared content-addressed cell cache directory, exported to the
  /// workers' environment; empty = no cache.
  std::string cache_dir;
  std::uint64_t cache_bytes = 0;  ///< cache bound; 0 = library default
  /// Execution attempts per request before it becomes a typed error.
  unsigned max_attempts = 3;
  /// Per-request deadline in milliseconds, applied to the HEAD of each
  /// worker's in-flight window; a worker that exceeds it is SIGKILLed
  /// and its whole window retried. 0 disables the deadline.
  int request_deadline_ms = 0;
  /// Credit window: in-flight requests per worker (>= 1). 1 restores
  /// the PR 9 lock-step behavior; 8 keeps a small-cell pipe busy.
  unsigned window = 8;
  /// Wire version (protocol.hpp): kWireVersionText or
  /// kWireVersionBinary. 0 = resolve from PARBOUNDS_FLEET_WIRE
  /// (worker.hpp wire_version_from_env; default binary).
  unsigned wire = 0;
};

class FleetCoordinator {
 public:
  explicit FleetCoordinator(FleetConfig cfg);
  ~FleetCoordinator();  ///< shuts down (or kills) every live worker

  FleetCoordinator(const FleetCoordinator&) = delete;
  FleetCoordinator& operator=(const FleetCoordinator&) = delete;

  /// Drive every request to a final response (Ok or Error), in request
  /// order. Callable repeatedly; workers persist across calls. Throws
  /// std::runtime_error only when the fleet itself is unusable (all
  /// workers dead with work outstanding).
  std::vector<service::Response> run_requests(
      std::vector<service::Request> reqs);

  unsigned workers() const { return cfg_.workers; }
  unsigned window() const { return cfg_.window; }
  unsigned wire() const { return cfg_.wire; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// Convenience: current value of one fleet.* counter or gauge.
  std::uint64_t counter(const std::string& name) const;

 private:
  struct Worker {
    pid_t pid = -1;
    int to_fd = -1;    ///< coordinator -> worker requests (O_NONBLOCK)
    int from_fd = -1;  ///< worker -> coordinator responses
    service::FrameDecoder decoder;
    bool alive = false;
    unsigned wire = service::kWireVersionText;  ///< negotiated at spawn
    std::deque<std::size_t> queue;     ///< assigned, not yet sent
    std::deque<std::size_t> inflight;  ///< sent, unanswered (FIFO)
    /// Deadline for inflight.front(); armed when a request reaches the
    /// head of the window (sent into an empty window, or promoted when
    /// its predecessor's response arrives).
    std::uint64_t head_deadline_ns = 0;
    WriteQueue outq;  ///< pending request frames, flushed via writev
  };

  bool spawn(unsigned slot);
  unsigned alive_count() const;

  FleetConfig cfg_;
  obs::MetricsRegistry metrics_;
  obs::MetricsRegistry::Id spawn_id_, exit_id_, retry_id_, reassign_id_;
  obs::MetricsRegistry::Id bytes_tx_id_, bytes_rx_id_;
  obs::MetricsRegistry::Id frames_tx_id_, frames_rx_id_;
  obs::MetricsRegistry::Id window_depth_id_;
  std::vector<Worker> workers_;
  std::string encode_scratch_;  ///< reused request-payload buffer
};

}  // namespace parbounds::fleet
