#pragma once
// Static work partition for the sweep fleet (docs/SERVICE.md).
//
// The unit of distribution is one request (for a bench sweep: one
// cell). Everything that determines a request's RESULT — its spec, its
// base seed, its trial0/trials repetition block — is a pure function of
// the request list, fixed before any worker exists; the discipline of
// PR 5's sharded commit (shard boundaries a pure function of the phase,
// never of pool size). The worker count decides only PLACEMENT: request
// i initially goes to owner_of(total, workers, i), the same contiguous
// block map the ExperimentRunner seeds its shards with. Placement can
// change at runtime (a crashed worker's block is reassigned to
// survivors) without touching any result byte, which is exactly why the
// merged report is byte-identical at any worker count and across
// failures. The same argument covers COMPLETION ORDER: with credit
// windows (coordinator.hpp) different workers finish interleaved and a
// requeued window replays cells late, so the coordinator slots every
// response by the request's placement index — never arrival order — and
// the merge is insensitive to both where and when a request ran.

#include <cstdint>
#include <utility>

namespace parbounds::fleet {

/// Contiguous block owned by shard s of `shards` over [0, total):
/// [s*total/shards, (s+1)*total/shards). Blocks tile the range exactly
/// and differ in size by at most one.
std::pair<std::uint64_t, std::uint64_t> shard_range(std::uint64_t total,
                                                    unsigned shards,
                                                    unsigned s);

/// The shard whose block contains index i (inverse of shard_range).
unsigned owner_of(std::uint64_t total, unsigned shards, std::uint64_t i);

}  // namespace parbounds::fleet
