#pragma once
// FdTransport — length-prefixed frames (sweep_service/protocol.hpp)
// over a pair of file descriptors, behind the service's Transport seam
// so the worker's serve loop is byte-compatible with the socket
// daemon's. Pipes and sockets both deliver arbitrary slices, so recv()
// reassembles frames through a FrameDecoder: short reads, frames split
// across pipe-buffer boundaries, and even a split 4-byte length prefix
// are all just NeedMore states, never errors.
//
// EOF is classified, not collapsed: a clean close between frames ends
// recv() with eof_mid_frame() == false, while EOF with partial-frame
// bytes buffered (a peer that died mid-write) sets it — the signal the
// fleet coordinator treats as a worker crash. Oversized frames are
// protocol errors and close the stream the same way.

#include <string>

#include "runtime/sweep_service/protocol.hpp"
#include "runtime/sweep_service/serve.hpp"

namespace parbounds::fleet {

class FdTransport : public service::Transport {
 public:
  /// Reads from `rfd`, writes to `wfd` (they may be the same fd, e.g. a
  /// connected socket). Does not own either descriptor.
  FdTransport(int rfd, int wfd) : rfd_(rfd), wfd_(wfd) {}

  /// Blocks for the next whole frame; false on EOF or protocol error.
  bool recv(std::string& payload) override;

  /// Writes one whole frame, looping over short writes. A failed or
  /// partial write (peer gone) sets send_failed().
  void send(const std::string& payload) override;

  bool eof_mid_frame() const { return eof_mid_frame_; }
  bool send_failed() const { return send_failed_; }

 private:
  int rfd_;
  int wfd_;
  service::FrameDecoder decoder_;
  bool eof_mid_frame_ = false;
  bool send_failed_ = false;
};

/// write(2) until `bytes` is fully flushed, retrying EINTR; false on
/// any other error (notably EPIPE when the reader died).
bool write_all_fd(int fd, const std::string& bytes);

}  // namespace parbounds::fleet
