#pragma once
// FdTransport — length-prefixed frames (sweep_service/protocol.hpp)
// over a pair of file descriptors, behind the service's Transport seam
// so the worker's serve loop is byte-compatible with the socket
// daemon's. Pipes and sockets both deliver arbitrary slices, so recv()
// reassembles frames through a FrameDecoder: short reads, frames split
// across pipe-buffer boundaries, and even a split 4-byte length prefix
// are all just NeedMore states, never errors.
//
// EOF is classified, not collapsed: a clean close between frames ends
// recv() with eof_mid_frame() == false, while EOF with partial-frame
// bytes buffered (a peer that died mid-write) sets it — the signal the
// fleet coordinator treats as a worker crash. Oversized frames are
// protocol errors and close the stream the same way.
//
// send() reuses one member scratch buffer for the framed bytes, so the
// steady-state response path performs no per-frame heap allocation
// (the buffer keeps its capacity across frames).
//
// WriteQueue is the coordinator-side counterpart: pending frames
// accumulate as discrete buffers and flush() pushes them through one
// writev(2) per call — every frame queued in a poll() iteration rides
// a single syscall — while fully-written buffers are recycled into a
// spare pool instead of freed, so pipelined request bursts allocate
// nothing once warm. The fd must be O_NONBLOCK: a full pipe parks the
// remainder (flush() returns Again) for the caller's next POLLOUT.

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "runtime/sweep_service/protocol.hpp"
#include "runtime/sweep_service/serve.hpp"

namespace parbounds::fleet {

class FdTransport : public service::Transport {
 public:
  /// Reads from `rfd`, writes to `wfd` (they may be the same fd, e.g. a
  /// connected socket). Does not own either descriptor. `max_payload`
  /// bounds frame payloads in both directions (protocol.hpp framing).
  FdTransport(int rfd, int wfd,
              std::size_t max_payload = service::kMaxFramePayload)
      : rfd_(rfd), wfd_(wfd), max_payload_(max_payload),
        decoder_(max_payload) {}

  /// Blocks for the next whole frame; false on EOF or protocol error.
  bool recv(std::string& payload) override;

  /// Writes one whole frame, looping over short writes. A failed or
  /// partial write (peer gone) sets send_failed().
  void send(const std::string& payload) override;

  bool eof_mid_frame() const { return eof_mid_frame_; }
  bool send_failed() const { return send_failed_; }

 private:
  int rfd_;
  int wfd_;
  std::size_t max_payload_;
  service::FrameDecoder decoder_;
  std::string frame_scratch_;  ///< reused framed-bytes buffer
  bool eof_mid_frame_ = false;
  bool send_failed_ = false;
};

/// write(2) until `bytes` is fully flushed, retrying EINTR; false on
/// any other error (notably EPIPE when the reader died).
bool write_all_fd(int fd, const std::string& bytes);

/// Batched, buffer-reusing frame writer over a non-blocking fd.
class WriteQueue {
 public:
  enum class Flush : std::uint8_t {
    Done,   ///< queue drained
    Again,  ///< fd full (EAGAIN); retry on POLLOUT
    Error,  ///< fatal write error (peer gone)
  };

  /// Frame `payload` and append it to the queue. Buffers come from the
  /// spare pool when one is available.
  void push(std::string_view payload,
            std::size_t max_payload = service::kMaxFramePayload);

  /// writev() pending frames to `fd` until drained, EAGAIN, or error.
  /// `bytes_written`/`frames_written` accumulate what this call moved.
  Flush flush(int fd, std::uint64_t& bytes_written,
              std::uint64_t& frames_written);

  bool empty() const { return frames_.empty(); }
  /// Recycle every pending frame (worker died; its bytes are moot).
  void clear();

 private:
  std::deque<std::string> frames_;   ///< pending framed bytes, FIFO
  std::size_t front_off_ = 0;        ///< bytes of frames_.front() written
  std::vector<std::string> spare_;   ///< recycled buffers, capacity kept
};

}  // namespace parbounds::fleet
