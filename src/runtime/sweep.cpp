#include "runtime/sweep.hpp"

#include <chrono>
#include <cstring>
#include <utility>

#include "util/stats.hpp"

namespace parbounds::runtime {

namespace {

// DETLINT(det.wall-clock): wall_ms telemetry only; never enters results
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

std::vector<double> run_all(const ExperimentRunner& runner,
                            const std::vector<SweepCell>& cells,
                            const std::vector<std::uint32_t>& cell_of,
                            std::uint64_t base_seed) {
  return runner.run(cell_of.size(), base_seed,
                    [&](std::uint64_t trial, std::uint64_t seed) {
                      return cells[cell_of[trial]].run(seed);
                    });
}

}  // namespace

double speedup_vs_serial(const SweepResult& s) {
  if (s.serial_wall_ms <= 0.0 || s.wall_ms <= 0.0) return 1.0;
  return s.serial_wall_ms / s.wall_ms;
}

SweepResult run_sweep(const ExperimentRunner& runner, std::string title,
                      std::uint64_t base_seed, std::vector<SweepCell> cells,
                      bool serial_baseline) {
  SweepResult out;
  out.title = std::move(title);
  out.base_seed = base_seed;

  std::vector<std::uint32_t> cell_of;
  for (std::uint32_t c = 0; c < cells.size(); ++c)
    for (unsigned r = 0; r < cells[c].trials; ++r) cell_of.push_back(c);

  const auto t0 = Clock::now();
  const auto costs = run_all(runner, cells, cell_of, base_seed);
  out.wall_ms = ms_since(t0);

  if (serial_baseline) {
    const ExperimentRunner serial({.jobs = 1});
    const auto t1 = Clock::now();
    const auto again = run_all(serial, cells, cell_of, base_seed);
    out.serial_wall_ms = ms_since(t1);
    // Bitwise, not operator== — the guarantee is bit-identity.
    out.deterministic =
        costs.size() == again.size() &&
        (costs.empty() ||
         std::memcmp(costs.data(), again.data(),
                     costs.size() * sizeof(double)) == 0);
  }

  out.cells = aggregate_cells(cells, costs);
  return out;
}

std::vector<CellResult> aggregate_cells(const std::vector<SweepCell>& cells,
                                        const std::vector<double>& costs) {
  std::vector<CellResult> out;
  out.reserve(cells.size());
  std::size_t next = 0;
  for (const auto& cell : cells) {
    CellResult cr;
    cr.key = cell.key;
    cr.lb = cell.lb;
    cr.ub = cell.ub;
    cr.costs.assign(costs.begin() + static_cast<std::ptrdiff_t>(next),
                    costs.begin() +
                        static_cast<std::ptrdiff_t>(next + cell.trials));
    next += cell.trials;
    cr.mean = mean(cr.costs);
    cr.p50 = percentile(cr.costs, 50.0);
    cr.p99 = percentile(cr.costs, 99.0);
    out.push_back(std::move(cr));
  }
  return out;
}

}  // namespace parbounds::runtime
