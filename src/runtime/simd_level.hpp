#pragma once
// Runtime SIMD dispatch level (docs/PERF.md, "SIMD kernel dispatch").
//
// The BoolFn word loops (src/boolfn/simd_kernels.*) ship in three
// variants — portable scalar, AVX2 and AVX-512 — selected ONCE per
// process from a cpuid probe, overridable by the PARBOUNDS_SIMD
// environment variable (values: portable | avx2 | avx512). The level
// lives here, below boolfn, so the bench JSON host provenance block can
// record it without a layering cycle.
//
// Determinism contract: every variant is bit-identical to portable —
// all kernels are exact integer/bitwise operations whose partial sums
// are associative and commutative — so the level may only change wall
// clock, never a model cost, a degree, or a serialized report (the
// timing-free document carries no host block and therefore no level).
// bench_hotpath's dispatch-equivalence oracle enforces this on every
// level the host supports, at pool sizes 1/2/8.

#include <string>
#include <vector>

namespace parbounds::runtime {

/// Kernel tiers in ascending order. Each tier requires the previous
/// one's cpu features plus its own; `portable` is always available.
enum class SimdLevel : unsigned {
  kPortable = 0,  ///< scalar word loops, the reference semantics
  kAvx2 = 1,      ///< 256-bit integer ops (requires avx2)
  kAvx512 = 2,    ///< 512-bit ops (requires avx512f+bw+vpopcntdq)
};

/// "portable" | "avx2" | "avx512" — the spelling PARBOUNDS_SIMD takes
/// and the bench JSON "dispatch" field reports.
const char* simd_level_name(SimdLevel level);

/// Parse a PARBOUNDS_SIMD value. On success sets `out` and returns
/// true; on an unknown value returns false and sets `error` to a typed
/// message with a did-you-mean hint (the same discipline as the
/// --via-*/--cache-* flag rejection in harness_flags).
bool parse_simd_level(const std::string& text, SimdLevel& out,
                      std::string& error);

/// Highest tier this cpu can run (cpuid probe; portable on non-x86).
SimdLevel max_supported_simd_level();

/// Every runnable tier in ascending order; always contains kPortable.
/// This is what the dispatch-equivalence oracle iterates.
std::vector<SimdLevel> supported_simd_levels();

/// The level the kernel table dispatches through. Resolved once on
/// first use: PARBOUNDS_SIMD when set (an unknown value or a tier the
/// cpu cannot run throws std::invalid_argument with the typed
/// message), otherwise max_supported_simd_level().
SimdLevel active_simd_level();

/// Re-pin the dispatch level at runtime (tests and the equivalence
/// oracle). Throws std::invalid_argument when the cpu cannot run it.
void set_simd_level(SimdLevel level);

/// Space-separated cpu feature flags relevant to the kernel tiers
/// (e.g. "popcnt avx avx2 avx512f avx512bw avx512vpopcntdq"), probed
/// once; "none" when no probed feature is present. Recorded in the
/// bench JSON host block so BENCH_*.json stays interpretable.
const std::string& cpu_feature_flags();

}  // namespace parbounds::runtime
