#pragma once
// Sweep execution: a named grid of cells, each repeated over derived
// seeds, fanned across the ExperimentRunner and aggregated in trial
// order. This is the layer the bench harness, the fuzz tests and any
// future seed-sweep experiment share; the per-cell aggregates
// (mean/p50/p99) come from util/stats so every consumer summarizes the
// same way.
//
// Seeding discipline: the trial list is the concatenation of every
// cell's repetitions, in declaration order, and trial t runs with
// derive_seed(base_seed, t). Adding a cell changes the seeds of the
// cells after it (the grid is part of the experiment's identity) but
// never makes the result depend on thread count or scheduling.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/runner.hpp"

namespace parbounds::runtime {

/// Service-routable description of a cell's trial body: a named cost
/// kernel (src/algos/cost_kernels.hpp via the service workload registry)
/// on a named engine with integer parameters. A cell that carries one
/// can be executed by the sweep service (docs/SERVICE.md) instead of its
/// `run` closure; the two must compute the identical cost — the
/// via-service byte-identity test in test_bench_json holds benches to
/// that. An empty `workload` means "closure only, not routable".
struct ServiceSpec {
  std::string engine;    ///< "qsm" | "sqsm" | "qsm-crfree" | "bsp" | ...
  std::string workload;  ///< registry name, e.g. "parity_circuit"
  std::vector<std::pair<std::string, std::uint64_t>> params;

  bool routable() const { return !workload.empty(); }
};

/// One grid point: `trials` repetitions of `run` over derived seeds.
/// lb/ub are the paper's bound values for the cell, carried through to
/// the JSON report (0 when not applicable).
struct SweepCell {
  std::string key;
  unsigned trials = 1;
  double lb = 0.0;
  double ub = 0.0;
  std::function<double(std::uint64_t seed)> run;
  ServiceSpec spec{};  ///< optional service routing (see ServiceSpec)
};

/// Aggregated results for one cell, in cell declaration order.
struct CellResult {
  std::string key;
  double lb = 0.0;
  double ub = 0.0;
  std::vector<double> costs;  ///< per-trial model costs, trial order
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// One executed sweep. serial_wall_ms is 0 unless a serial baseline was
/// measured; `deterministic` then records whether the baseline
/// reproduced the parallel costs bit for bit (it must — a `false` here
/// means a trial body broke the seeding discipline).
struct SweepResult {
  std::string title;
  std::uint64_t base_seed = 0;
  std::vector<CellResult> cells;
  double wall_ms = 0.0;
  double serial_wall_ms = 0.0;
  bool deterministic = true;
};

/// Wall-clock speedup of the parallel run over the serial baseline
/// (1.0 when no baseline was measured).
double speedup_vs_serial(const SweepResult& s);

/// Slice per-trial costs (in cell-concatenation trial order, i.e. the
/// order run_sweep executes) back into per-cell aggregates. Shared by
/// run_sweep and the service-backed executor so both summarize the
/// same way — a precondition for their reports being byte-identical.
std::vector<CellResult> aggregate_cells(const std::vector<SweepCell>& cells,
                                        const std::vector<double>& costs);

/// Execute every (cell, repetition) trial through `runner`. When
/// `serial_baseline` is set, the whole sweep is re-run on one thread to
/// time the serial path and cross-check bit-identical results.
SweepResult run_sweep(const ExperimentRunner& runner, std::string title,
                      std::uint64_t base_seed, std::vector<SweepCell> cells,
                      bool serial_baseline = false);

}  // namespace parbounds::runtime
