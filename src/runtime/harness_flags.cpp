#include "runtime/harness_flags.hpp"

#include <cstdlib>

namespace parbounds::runtime {

namespace {

/// Resolve the optional path after a bare --json/--trace at argv[i].
/// Consumes argv[i + 1] when it is a plain path; keeps the default when
/// the next token is another `--flag`; flags an error on a single-dash
/// token, which the old parser silently swallowed as "no path".
bool optional_path(const char* flag, int& i, int argc, char** argv,
                   std::string& path, HarnessFlags& out) {
  if (i + 1 >= argc) return true;
  const std::string next = argv[i + 1];
  if (next.empty() || next[0] != '-') {
    path = argv[++i];
    return true;
  }
  if (next.size() >= 2 && next[1] == '-') return true;  // another flag
  out.error = true;
  out.error_message = std::string(flag) + " " + next +
                      ": ambiguous path beginning with '-'; use " + flag +
                      "=" + next + " to force it";
  return false;
}

}  // namespace

HarnessFlags parse_harness_flags(int& argc, char** argv,
                                 const std::string& default_json_path,
                                 const std::string& default_trace_path) {
  HarnessFlags out;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs") {
      if (i + 1 >= argc) {
        out.error = true;
        out.error_message = "--jobs requires a value";
        break;
      }
      out.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      out.jobs =
          static_cast<unsigned>(std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else if (arg == "--json") {
      out.json_path = default_json_path;
      if (!optional_path("--json", i, argc, argv, out.json_path, out)) break;
    } else if (arg.rfind("--json=", 0) == 0) {
      out.json_path = arg.substr(7);
    } else if (arg == "--trace") {
      out.trace_path = default_trace_path;
      if (!optional_path("--trace", i, argc, argv, out.trace_path, out)) break;
    } else if (arg.rfind("--trace=", 0) == 0) {
      out.trace_path = arg.substr(8);
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return out;
}

}  // namespace parbounds::runtime
