#include "runtime/harness_flags.hpp"

#include <cstdlib>

namespace parbounds::runtime {

namespace {

/// Resolve the optional path after a bare --json/--trace at argv[i].
/// Consumes argv[i + 1] when it is a plain path; keeps the default when
/// the next token is another `--flag`; flags an error on a single-dash
/// token, which the old parser silently swallowed as "no path".
bool optional_path(const char* flag, int& i, int argc, char** argv,
                   std::string& path, HarnessFlags& out) {
  if (i + 1 >= argc) return true;
  const std::string next = argv[i + 1];
  if (next.empty() || next[0] != '-') {
    path = argv[++i];
    return true;
  }
  if (next.size() >= 2 && next[1] == '-') return true;  // another flag
  out.error = true;
  out.error_message = std::string(flag) + " " + next +
                      ": ambiguous path beginning with '-'; use " + flag +
                      "=" + next + " to force it";
  return false;
}

/// Parse the value of --threads (from `text`), enforcing N >= 1. There
/// is deliberately no --threads 0: "auto" is spelled by omitting the
/// flag (which follows --jobs), so a literal 0 is always a mistake.
void set_threads(const char* text, HarnessFlags& out) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || v == 0) {
    out.error = true;
    out.error_message = std::string("--threads ") + text +
                        ": pool size must be a positive integer "
                        "(omit --threads to follow --jobs)";
    return;
  }
  out.threads = static_cast<unsigned>(v);
  out.threads_set = true;
}

}  // namespace

HarnessFlags parse_harness_flags(int& argc, char** argv,
                                 const std::string& default_json_path,
                                 const std::string& default_trace_path) {
  HarnessFlags out;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs") {
      if (i + 1 >= argc) {
        out.error = true;
        out.error_message = "--jobs requires a value";
        break;
      }
      out.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      out.jobs =
          static_cast<unsigned>(std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else if (arg == "--threads") {
      if (i + 1 >= argc) {
        out.error = true;
        out.error_message = "--threads requires a value";
        break;
      }
      set_threads(argv[++i], out);
      if (out.error) break;
    } else if (arg.rfind("--threads=", 0) == 0) {
      set_threads(arg.c_str() + 10, out);
      if (out.error) break;
    } else if (arg == "--json") {
      out.json_path = default_json_path;
      if (!optional_path("--json", i, argc, argv, out.json_path, out)) break;
    } else if (arg.rfind("--json=", 0) == 0) {
      out.json_path = arg.substr(7);
    } else if (arg == "--trace") {
      out.trace_path = default_trace_path;
      if (!optional_path("--trace", i, argc, argv, out.trace_path, out)) break;
    } else if (arg.rfind("--trace=", 0) == 0) {
      out.trace_path = arg.substr(8);
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return out;
}

}  // namespace parbounds::runtime
