#include "runtime/harness_flags.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace parbounds::runtime {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

namespace {

/// The harness-owned flag namespaces. Tokens under --via-/--cache- that
/// match none of these are typos, not google-benchmark flags.
const char* const kServiceFlags[] = {"--via-service", "--cache-dir",
                                     "--cache-bytes"};

void reject_unknown_service_flag(const std::string& arg, HarnessFlags& out) {
  const std::string name = arg.substr(0, arg.find('='));
  const char* best = kServiceFlags[0];
  std::size_t best_dist = edit_distance(name, best);
  for (const char* candidate : kServiceFlags) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_dist) {
      best = candidate;
      best_dist = d;
    }
  }
  out.error = true;
  out.error_message =
      "unknown flag '" + name + "'; did you mean '" + best + "'?";
}

/// Parse the value of --cache-bytes, a byte count >= 1 (0 is spelled by
/// omitting the flag, which takes the library default).
void set_cache_bytes(const char* text, HarnessFlags& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || v == 0) {
    out.error = true;
    out.error_message = std::string("--cache-bytes ") + text +
                        ": size bound must be a positive byte count";
    return;
  }
  out.cache_bytes = v;
}

/// Resolve the optional path after a bare --json/--trace at argv[i].
/// Consumes argv[i + 1] when it is a plain path; keeps the default when
/// the next token is another `--flag`; flags an error on a single-dash
/// token, which the old parser silently swallowed as "no path".
bool optional_path(const char* flag, int& i, int argc, char** argv,
                   std::string& path, HarnessFlags& out) {
  if (i + 1 >= argc) return true;
  const std::string next = argv[i + 1];
  if (next.empty() || next[0] != '-') {
    path = argv[++i];
    return true;
  }
  if (next.size() >= 2 && next[1] == '-') return true;  // another flag
  out.error = true;
  out.error_message = std::string(flag) + " " + next +
                      ": ambiguous path beginning with '-'; use " + flag +
                      "=" + next + " to force it";
  return false;
}

/// Parse the value of --threads (from `text`), enforcing N >= 1. There
/// is deliberately no --threads 0: "auto" is spelled by omitting the
/// flag (which follows --jobs), so a literal 0 is always a mistake.
void set_threads(const char* text, HarnessFlags& out) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || v == 0) {
    out.error = true;
    out.error_message = std::string("--threads ") + text +
                        ": pool size must be a positive integer "
                        "(omit --threads to follow --jobs)";
    return;
  }
  out.threads = static_cast<unsigned>(v);
  out.threads_set = true;
}

/// Parse the value of --workers, enforcing N >= 1. As with --threads
/// there is no "auto" spelling: fleet-off is spelled by omitting the
/// flag, so a literal 0 is always a mistake.
void set_workers(const char* text, HarnessFlags& out) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || v == 0) {
    out.error = true;
    out.error_message = std::string("--workers ") + text +
                        ": fleet width must be a positive integer "
                        "(omit --workers for in-process execution)";
    return;
  }
  out.workers = static_cast<unsigned>(v);
}

/// Parse the value of --fleet-window, enforcing K >= 1. There is no
/// "auto" spelling: the default window is spelled by omitting the
/// flag, and a window of 0 could never make progress anyway.
void set_fleet_window(const char* text, HarnessFlags& out) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || v == 0) {
    out.error = true;
    out.error_message = std::string("--fleet-window ") + text +
                        ": credit window must be a positive integer "
                        "(omit --fleet-window for the default of 8)";
    return;
  }
  out.fleet_window = static_cast<unsigned>(v);
}

}  // namespace

HarnessFlags parse_harness_flags(int& argc, char** argv,
                                 const std::string& default_json_path,
                                 const std::string& default_trace_path) {
  HarnessFlags out;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs") {
      if (i + 1 >= argc) {
        out.error = true;
        out.error_message = "--jobs requires a value";
        break;
      }
      out.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      out.jobs =
          static_cast<unsigned>(std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else if (arg == "--threads") {
      if (i + 1 >= argc) {
        out.error = true;
        out.error_message = "--threads requires a value";
        break;
      }
      set_threads(argv[++i], out);
      if (out.error) break;
    } else if (arg.rfind("--threads=", 0) == 0) {
      set_threads(arg.c_str() + 10, out);
      if (out.error) break;
    } else if (arg == "--json") {
      out.json_path = default_json_path;
      if (!optional_path("--json", i, argc, argv, out.json_path, out)) break;
    } else if (arg.rfind("--json=", 0) == 0) {
      out.json_path = arg.substr(7);
    } else if (arg == "--trace") {
      out.trace_path = default_trace_path;
      if (!optional_path("--trace", i, argc, argv, out.trace_path, out)) break;
    } else if (arg.rfind("--trace=", 0) == 0) {
      out.trace_path = arg.substr(8);
    } else if (arg == "--via-service") {
      out.via_service = true;
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) {
        out.error = true;
        out.error_message = "--cache-dir requires a value";
        break;
      }
      out.cache_dir = argv[++i];
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      out.cache_dir = arg.substr(12);
    } else if (arg == "--cache-bytes") {
      if (i + 1 >= argc) {
        out.error = true;
        out.error_message = "--cache-bytes requires a value";
        break;
      }
      set_cache_bytes(argv[++i], out);
      if (out.error) break;
    } else if (arg.rfind("--cache-bytes=", 0) == 0) {
      set_cache_bytes(arg.c_str() + 14, out);
      if (out.error) break;
    } else if (arg == "--workers") {
      if (i + 1 >= argc) {
        out.error = true;
        out.error_message = "--workers requires a value";
        break;
      }
      set_workers(argv[++i], out);
      if (out.error) break;
    } else if (arg.rfind("--workers=", 0) == 0) {
      set_workers(arg.c_str() + 10, out);
      if (out.error) break;
    } else if (arg == "--fleet-window") {
      if (i + 1 >= argc) {
        out.error = true;
        out.error_message = "--fleet-window requires a value";
        break;
      }
      set_fleet_window(argv[++i], out);
      if (out.error) break;
    } else if (arg.rfind("--fleet-window=", 0) == 0) {
      set_fleet_window(arg.c_str() + 15, out);
      if (out.error) break;
    } else if (arg.rfind("--via-", 0) == 0 || arg.rfind("--cache-", 0) == 0) {
      reject_unknown_service_flag(arg, out);
      break;
    } else {
      // A near-miss of --workers (--worker, --wokers, ...) or of
      // --fleet-window (--fleet-windw, or the tempting short spelling
      // --window) must not fall through to google-benchmark: the sweep
      // would silently run in-process (or lock-step) and look like the
      // requested fleet run.
      const std::string name = arg.substr(0, arg.find('='));
      if (name.rfind("--", 0) == 0 && name != "--workers" &&
          edit_distance(name, "--workers") <= 2) {
        out.error = true;
        out.error_message =
            "unknown flag '" + name + "'; did you mean '--workers'?";
        break;
      }
      if (name.rfind("--", 0) == 0 && name != "--fleet-window" &&
          (name == "--window" ||
           edit_distance(name, "--fleet-window") <= 2)) {
        out.error = true;
        out.error_message =
            "unknown flag '" + name + "'; did you mean '--fleet-window'?";
        break;
      }
      argv[w++] = argv[i];
    }
  }
  if (!out.error && out.fleet_window > 0 && out.workers == 0) {
    out.error = true;
    out.error_message =
        "--fleet-window without --workers: the credit window applies to "
        "fleet worker processes (add --workers N)";
  }
  argc = w;
  return out;
}

}  // namespace parbounds::runtime
