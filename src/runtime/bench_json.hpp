#pragma once
// Machine-readable bench output. Every bench binary can serialize its
// executed sweeps as one JSON document (schema "parbounds-bench-v1"):
// configuration, per-trial model costs, aggregates, wall times and the
// speedup over the serial baseline. This is what turns BENCH_*.json
// into a perf trajectory — model costs are bit-stable across runs and
// thread counts, so any drift in them is a regression, while the wall
// fields track the simulator's own throughput.
//
// Doubles are printed with %.17g so parsing the file back reproduces
// the measured costs exactly; `to_json(report, /*include_timing=*/false)`
// omits every wall-clock field, which makes serial and parallel runs of
// the same experiment serialize to identical bytes (the golden-schema
// test relies on this).

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/sweep.hpp"

namespace parbounds::runtime {

struct BenchReport {
  std::string bench;        ///< binary name, e.g. "bench_table1_qsm_time"
  unsigned jobs = 1;        ///< worker threads used for the sweeps
  unsigned threads = 1;     ///< intra-trial ParallelFor pool size
  std::uint64_t seed = 0;   ///< root seed the sweep base seeds derive from
  /// Pre-serialized MetricsSnapshot::to_json() captured after the last
  /// sweep (empty = no "metrics" key). Metric values derive from model
  /// costs only, so the block is bit-identical across --jobs.
  std::string metrics_json;
  std::vector<SweepResult> sweeps;
};

/// Total wall / serial-wall across sweeps; 1.0 when nothing was timed.
double report_speedup(const BenchReport& report);

/// The "host" provenance block: hardware_concurrency of the machine the
/// bench ran on, the CMake build type baked into the library, the
/// compiler, the active SIMD dispatch level and the probed cpu feature
/// flags (docs/PERF.md). Wall numbers are only comparable within a
/// matching host block, so every timed report carries one.
std::string host_json();

/// True only if every sweep's serial baseline matched bit for bit.
bool report_deterministic(const BenchReport& report);

/// JSON escape for string values (quotes, backslashes, control chars).
std::string json_escape(const std::string& s);

std::string to_json(const BenchReport& report, bool include_timing = true);

}  // namespace parbounds::runtime
