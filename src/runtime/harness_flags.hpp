#pragma once
// Harness flag parsing, extracted from bench/harness.hpp so it is unit
// testable (test_bench_json covers it).
//
// Every bench binary accepts:
//
//   --jobs N        worker threads (0 = hardware concurrency)
//   --threads N     intra-trial pool size (ParallelFor); defaults to
//                   the resolved --jobs value. N must be >= 1: unlike
//                   --jobs there is no "auto" spelling, so --threads 0
//                   is rejected rather than silently remapped.
//   --json [PATH]   parbounds-bench-v1 report; bare --json uses the
//                   caller's default path
//   --trace [PATH]  Chrome trace-event span export; bare --trace uses
//                   the caller's default path
//   --via-service   route sweeps through an in-process SweepService
//                   with a content-addressed result cache
//                   (docs/SERVICE.md); report bytes stay identical to
//                   an in-process run
//   --cache-dir P   service result-cache directory (also the fleet's
//                   shared cell cache under --workers)
//   --cache-bytes N service cache size bound (0 = library default)
//   --workers N     execute sweeps across N fleet worker PROCESSES
//                   (docs/SERVICE.md#fleet); the merged report stays
//                   byte-identical to in-process --jobs 1. N must be
//                   >= 1: there is no "auto" fleet width, so
//                   --workers 0 is rejected rather than remapped.
//   --fleet-window K  per-worker credit window: each fleet worker holds
//                   up to K cells in flight (default 8; 1 = lock-step).
//                   K must be >= 1, and the flag only means something
//                   with --workers — either misuse is a typed error.
//
// Recognized flags are stripped from argv (google-benchmark parses the
// rest). A bare --json/--trace followed by another `--flag` takes the
// default path; a following token that begins with a single '-'
// (e.g. `--json -out.json`) is rejected with a pointer at the
// unambiguous `--json=-out.json` spelling — the old parser silently
// dropped the path in that case. Unknown flags normally pass through to
// google-benchmark, EXCEPT tokens starting with --via- or --cache-:
// those namespaces belong to the harness, so a typo there is rejected
// with a did-you-mean hint instead of being silently ignored. The same
// courtesy covers near-misses of --workers (`--worker`, `--wokers`)
// and --fleet-window (`--fleet-windw`, plus the tempting short
// spelling `--window`): any unknown --flag within edit distance 2 of
// either — or exactly `--window` — is rejected rather than passed
// through, because a silently dropped fleet flag would run the whole
// sweep in-process (or lock-step) and look like it worked.

#include <cstdint>
#include <string>

namespace parbounds::runtime {

struct HarnessFlags {
  unsigned jobs = 0;        ///< 0 = hardware concurrency
  unsigned threads = 0;     ///< intra-trial pool size; 0 = follow jobs
  bool threads_set = false; ///< --threads given explicitly
  std::string json_path;    ///< empty = no JSON report
  std::string trace_path;   ///< empty = no span trace
  bool via_service = false; ///< route sweeps through the sweep service
  std::string cache_dir;    ///< service cache dir; empty = harness default
  std::uint64_t cache_bytes = 0;  ///< service cache bound; 0 = default
  unsigned workers = 0;     ///< fleet worker processes; 0 = fleet off
  unsigned fleet_window = 0; ///< per-worker credit window; 0 = default (8)
  bool error = false;
  std::string error_message;

  /// The intra-trial pool size after applying the default: an explicit
  /// --threads wins, otherwise the resolved --jobs value.
  unsigned resolved_threads(unsigned resolved_jobs) const {
    return threads_set ? threads : resolved_jobs;
  }
};

/// Parse and strip --jobs/--threads/--json/--trace from argv. On error,
/// `error` is set, `error_message` names the offending token, and argv
/// is left partially compacted (callers should exit).
HarnessFlags parse_harness_flags(int& argc, char** argv,
                                 const std::string& default_json_path,
                                 const std::string& default_trace_path);

/// Plain Levenshtein distance — small strings, tiny table. Shared by
/// every did-you-mean rejection (the --via-/--cache- namespaces here,
/// PARBOUNDS_SIMD values in simd_level.cpp).
std::size_t edit_distance(const std::string& a, const std::string& b);

}  // namespace parbounds::runtime
