#include "runtime/runner.hpp"

#include <algorithm>

namespace parbounds::runtime {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t trial) {
  // splitmix64 finalizer over the combined words; the odd multiplier on
  // trial keeps (base, trial) and (base + 1, trial - 1) far apart.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (trial + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace detail {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

bool in_worker() noexcept { return t_in_worker; }

WorkerScope::WorkerScope() noexcept { t_in_worker = true; }
WorkerScope::~WorkerScope() { t_in_worker = false; }

}  // namespace detail

ExperimentRunner::ExperimentRunner(RunnerConfig cfg) : jobs_(cfg.jobs) {
  // DETLINT(det.hw-concurrency): default worker count; results are pool-invariant
  if (jobs_ == 0) jobs_ = std::max(1u, std::thread::hardware_concurrency());
}

std::vector<double> ExperimentRunner::run(
    std::uint64_t trials, std::uint64_t base_seed,
    const std::function<double(std::uint64_t, std::uint64_t)>& fn) const {
  return map<double>(trials, [&](std::uint64_t t) {
    return fn(t, derive_seed(base_seed, t));
  });
}

bool ExperimentRunner::steal_into(std::vector<detail::Shard>& shards,
                                  unsigned self) {
  // Pick the victim with the most remaining work, then split off its
  // upper half. The loose (unlocked-then-rechecked) size scan is fine:
  // a stale pick only costs one extra round trip.
  const unsigned n = static_cast<unsigned>(shards.size());
  unsigned victim = n;
  std::uint64_t best = 0;
  for (unsigned w = 0; w < n; ++w) {
    if (w == self) continue;
    std::lock_guard<std::mutex> lock(shards[w].mu);
    const std::uint64_t left = shards[w].hi - shards[w].lo;
    if (left > best) {
      best = left;
      victim = w;
    }
  }
  if (victim == n) return false;

  std::uint64_t lo = 0, hi = 0;
  {
    std::lock_guard<std::mutex> lock(shards[victim].mu);
    const std::uint64_t left = shards[victim].hi - shards[victim].lo;
    if (left == 0) return true;  // raced with the owner; rescan
    const std::uint64_t take = (left + 1) / 2;
    hi = shards[victim].hi;
    lo = hi - take;
    shards[victim].hi = lo;
  }
  {
    std::lock_guard<std::mutex> lock(shards[self].mu);
    shards[self].lo = lo;
    shards[self].hi = hi;
  }
  return true;
}

}  // namespace parbounds::runtime
