#pragma once
// Workload generators for the problems of Sections 3 and 6.
//
// Each generator is deterministic given an Rng, so every experiment is
// reproducible from the seed printed by the harness.

#include <cstdint>
#include <vector>

#include "core/trace.hpp"  // Word
#include "util/rng.hpp"

namespace parbounds {

/// A Boolean n-array for Parity / OR. `ones` of the positions are 1.
std::vector<Word> boolean_array(std::uint64_t n, std::uint64_t ones,
                                Rng& rng);

/// Bernoulli(p) Boolean array.
std::vector<Word> bernoulli_array(std::uint64_t n, double p, Rng& rng);

/// LAC instance (Section 6.2): an array of n cells, at most h of them
/// holding one item each (items are the values 1..h in random cells),
/// all other cells empty (0).
std::vector<Word> lac_instance(std::uint64_t n, std::uint64_t h, Rng& rng);

/// Load-balancing instance: h objects distributed over n processors;
/// entry i is the number of objects initially at processor i. The skew
/// parameter concentrates the objects on a 1/skew fraction of processors
/// (skew = 1 is uniform).
std::vector<std::uint64_t> load_balance_instance(std::uint64_t n,
                                                 std::uint64_t h,
                                                 std::uint64_t skew, Rng& rng);

/// Padded-sort instance (Section 6.2): n values uniform over [0, 1),
/// scaled to integers in [0, 2^30) so they fit machine Words exactly.
std::vector<Word> padded_sort_instance(std::uint64_t n, Rng& rng);
constexpr std::uint64_t kPaddedSortScale = std::uint64_t{1} << 30;

/// Random singly-linked list on n nodes for list ranking: succ[i] is the
/// successor of node i, the tail points to itself; returns the head too.
struct ListInstance {
  std::vector<std::uint32_t> succ;
  std::uint32_t head = 0;
  std::uint32_t tail = 0;
};
ListInstance list_instance(std::uint32_t n, Rng& rng);

/// Chromatic Load Balancing instance (Section 6): n groups of 4m objects;
/// every group gets one colour drawn uniformly from 8m colours.
struct ClbInstance {
  std::uint64_t n = 0;       ///< number of groups
  std::uint64_t m = 1;       ///< load parameter (output rows hold m objects)
  std::uint64_t colours = 8; ///< = 8m
  std::vector<std::uint32_t> group_colour;  ///< size n

  std::uint64_t objects_per_group() const { return 4 * m; }
  /// Number of groups wearing colour c.
  std::uint64_t count_colour(std::uint32_t c) const;
};
ClbInstance clb_instance(std::uint64_t n, std::uint64_t m, Rng& rng);

/// The paper's choice m = log log log log n (Theorem 6.1), clamped >= 1.
std::uint64_t clb_m_for(std::uint64_t n);

}  // namespace parbounds
