#include "workloads/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/mathx.hpp"

namespace parbounds {

std::vector<Word> boolean_array(std::uint64_t n, std::uint64_t ones,
                                Rng& rng) {
  if (ones > n) throw std::invalid_argument("ones > n");
  std::vector<Word> v(n, 0);
  // Floyd's algorithm would also do; with n small relative to memory a
  // partial shuffle is simplest and exactly uniform.
  auto perm = rng.permutation(static_cast<std::uint32_t>(n));
  for (std::uint64_t i = 0; i < ones; ++i) v[perm[i]] = 1;
  return v;
}

std::vector<Word> bernoulli_array(std::uint64_t n, double p, Rng& rng) {
  std::vector<Word> v(n);
  for (auto& x : v) x = rng.next_bool(p) ? 1 : 0;
  return v;
}

std::vector<Word> lac_instance(std::uint64_t n, std::uint64_t h, Rng& rng) {
  if (h > n) throw std::invalid_argument("LAC: h > n");
  std::vector<Word> v(n, 0);
  auto perm = rng.permutation(static_cast<std::uint32_t>(n));
  for (std::uint64_t i = 0; i < h; ++i)
    v[perm[i]] = static_cast<Word>(i + 1);  // items carry distinct ids
  return v;
}

std::vector<std::uint64_t> load_balance_instance(std::uint64_t n,
                                                 std::uint64_t h,
                                                 std::uint64_t skew,
                                                 Rng& rng) {
  std::vector<std::uint64_t> load(n, 0);
  const std::uint64_t hot = std::max<std::uint64_t>(1, n / std::max<std::uint64_t>(1, skew));
  for (std::uint64_t i = 0; i < h; ++i)
    ++load[rng.next_below(hot)];
  // Scatter the hot prefix across processor ids so position carries no
  // information.
  auto perm = rng.permutation(static_cast<std::uint32_t>(n));
  std::vector<std::uint64_t> out(n, 0);
  for (std::uint64_t i = 0; i < n; ++i) out[perm[i]] = load[i];
  return out;
}

std::vector<Word> padded_sort_instance(std::uint64_t n, Rng& rng) {
  std::vector<Word> v(n);
  for (auto& x : v)
    x = static_cast<Word>(rng.next_below(kPaddedSortScale));
  return v;
}

ListInstance list_instance(std::uint32_t n, Rng& rng) {
  if (n == 0) throw std::invalid_argument("list needs n >= 1");
  ListInstance li;
  li.succ.assign(n, 0);
  const auto order = rng.permutation(n);  // order[k] = k-th node on the list
  for (std::uint32_t k = 0; k + 1 < n; ++k) li.succ[order[k]] = order[k + 1];
  li.head = order[0];
  li.tail = order[n - 1];
  li.succ[li.tail] = li.tail;
  return li;
}

std::uint64_t ClbInstance::count_colour(std::uint32_t c) const {
  return static_cast<std::uint64_t>(
      std::count(group_colour.begin(), group_colour.end(), c));
}

ClbInstance clb_instance(std::uint64_t n, std::uint64_t m, Rng& rng) {
  ClbInstance inst;
  inst.n = n;
  inst.m = std::max<std::uint64_t>(1, m);
  inst.colours = 8 * inst.m;
  inst.group_colour.resize(n);
  for (auto& c : inst.group_colour)
    c = static_cast<std::uint32_t>(rng.next_below(inst.colours));
  return inst;
}

std::uint64_t clb_m_for(std::uint64_t n) {
  double x = static_cast<double>(std::max<std::uint64_t>(n, 16));
  for (int i = 0; i < 4; ++i) x = std::log2(std::max(x, 2.0));
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(x));
}

}  // namespace parbounds
