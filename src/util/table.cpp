#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>

namespace parbounds {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TextTable::integer(std::uint64_t v) { return std::to_string(v); }

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string banner(const std::string& title) {
  std::string rule(std::max<std::size_t>(title.size(), 60), '=');
  return rule + "\n" + title + "\n" + rule + "\n";
}

}  // namespace parbounds
