#pragma once
// Basic statistics used by the benchmark harness and the statistical tests
// around randomized algorithms (success probabilities, cost distributions)
// and the Random Adversary (Fact 4.1 distribution checks).

#include <cstddef>
#include <span>
#include <vector>

namespace parbounds {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);
double median(std::vector<double> xs);  // by copy; xs is partially sorted

/// Linearly interpolated percentile, pct in [0, 100] (numpy "linear"
/// convention: percentile(xs, 50) == median(xs)). Used by the runtime
/// sweep aggregation for p50/p99 cost summaries. Returns 0 when empty.
double percentile(std::vector<double> xs, double pct);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Least-squares fit y = a + b*x; returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Pearson chi-square statistic for observed counts vs expected counts.
/// Bins with expected < 1e-9 are skipped. Used to check that RANDOMSET
/// produces inputs with the target distribution (Fact 4.1).
double chi_square(std::span<const double> observed,
                  std::span<const double> expected);

/// Two-sided binomial proportion z-test statistic for k successes out of n
/// trials against probability p0. |z| < 3 is "consistent" at ~99.7%.
double binomial_z(std::size_t k, std::size_t n, double p0);

}  // namespace parbounds
