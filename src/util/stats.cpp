#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace parbounds {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid - 1),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (xs[mid - 1] + hi);
}

double percentile(std::vector<double> xs, double pct) {
  if (xs.empty()) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = pct / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

double min_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;
  const double mx = mean(x.subspan(0, n));
  const double my = mean(y.subspan(0, n));
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy <= 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double chi_square(std::span<const double> observed,
                  std::span<const double> expected) {
  double s = 0.0;
  const std::size_t n = std::min(observed.size(), expected.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (expected[i] < 1e-9) continue;
    const double d = observed[i] - expected[i];
    s += d * d / expected[i];
  }
  return s;
}

double binomial_z(std::size_t k, std::size_t n, double p0) {
  if (n == 0) return 0.0;
  const double nn = static_cast<double>(n);
  const double phat = static_cast<double>(k) / nn;
  const double se = std::sqrt(std::max(p0 * (1.0 - p0) / nn, 1e-300));
  return (phat - p0) / se;
}

}  // namespace parbounds
