#pragma once
// Deterministic, seedable random number generation.
//
// All randomized algorithms and workload generators in parbounds take an
// explicit Rng so that every experiment is reproducible from a seed printed
// in its output. The generator is xoshiro256**, seeded via splitmix64 —
// fast, high quality, and trivially portable (no <random> engine state
// differences across standard libraries).

#include <cstdint>
#include <vector>

namespace parbounds {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound) via Lemire's multiply-shift (bound > 0).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli(p) draw.
  bool next_bool(double p = 0.5);

  /// Derive an independent child generator (for per-processor streams).
  Rng split();

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<std::uint32_t> permutation(std::uint32_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace parbounds
