#pragma once
// SHA-256 (FIPS 180-4), self-contained — the repo links no crypto
// library. The sweep service uses it for content-addressed cache keys
// (docs/SERVICE.md): a key is the hex digest of the canonical request
// string, so equal requests collide by construction and unequal ones
// do not in any way an experiment could ever observe. Not intended for
// adversarial settings; cache poisoning is out of scope for a local
// result cache.

#include <cstdint>
#include <string>
#include <string_view>

namespace parbounds {

/// 64-char lowercase hex digest of `data`.
std::string sha256_hex(std::string_view data);

}  // namespace parbounds
