#include "util/sha256.hpp"

#include <array>
#include <cstring>

namespace parbounds {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98U, 0x71374491U, 0xb5c0fbcfU, 0xe9b5dba5U, 0x3956c25bU,
    0x59f111f1U, 0x923f82a4U, 0xab1c5ed5U, 0xd807aa98U, 0x12835b01U,
    0x243185beU, 0x550c7dc3U, 0x72be5d74U, 0x80deb1feU, 0x9bdc06a7U,
    0xc19bf174U, 0xe49b69c1U, 0xefbe4786U, 0x0fc19dc6U, 0x240ca1ccU,
    0x2de92c6fU, 0x4a7484aaU, 0x5cb0a9dcU, 0x76f988daU, 0x983e5152U,
    0xa831c66dU, 0xb00327c8U, 0xbf597fc7U, 0xc6e00bf3U, 0xd5a79147U,
    0x06ca6351U, 0x14292967U, 0x27b70a85U, 0x2e1b2138U, 0x4d2c6dfcU,
    0x53380d13U, 0x650a7354U, 0x766a0abbU, 0x81c2c92eU, 0x92722c85U,
    0xa2bfe8a1U, 0xa81a664bU, 0xc24b8b70U, 0xc76c51a3U, 0xd192e819U,
    0xd6990624U, 0xf40e3585U, 0x106aa070U, 0x19a4c116U, 0x1e376c08U,
    0x2748774cU, 0x34b0bcb5U, 0x391c0cb3U, 0x4ed8aa4aU, 0x5b9cca4fU,
    0x682e6ff3U, 0x748f82eeU, 0x78a5636fU, 0x84c87814U, 0x8cc70208U,
    0x90befffaU, 0xa4506cebU, 0xbef9a3f7U, 0xc67178f2U};

std::uint32_t rotr(std::uint32_t x, unsigned n) {
  return (x >> n) | (x << (32U - n));
}

struct State {
  std::array<std::uint32_t, 8> h = {0x6a09e667U, 0xbb67ae85U, 0x3c6ef372U,
                                    0xa54ff53aU, 0x510e527fU, 0x9b05688cU,
                                    0x1f83d9abU, 0x5be0cd19U};

  void compress(const unsigned char* block) {
    std::array<std::uint32_t, 64> w;
    for (unsigned i = 0; i < 16; ++i)
      w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24U) |
             (static_cast<std::uint32_t>(block[4 * i + 1]) << 16U) |
             (static_cast<std::uint32_t>(block[4 * i + 2]) << 8U) |
             static_cast<std::uint32_t>(block[4 * i + 3]);
    for (unsigned i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3U);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10U);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4], f = h[5],
                  g = h[6], hh = h[7];
    for (unsigned i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = hh + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }
};

}  // namespace

std::string sha256_hex(std::string_view data) {
  State st;
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t off = 0;
  for (; off + 64 <= data.size(); off += 64) st.compress(bytes + off);

  // Final block(s): remainder, 0x80, zero pad, 64-bit big-endian bit length.
  std::array<unsigned char, 128> tail = {};
  const std::size_t rem = data.size() - off;
  if (rem > 0) std::memcpy(tail.data(), bytes + off, rem);
  tail[rem] = 0x80;
  const std::size_t tail_len = rem + 1 + 8 <= 64 ? 64 : 128;
  const std::uint64_t bits = static_cast<std::uint64_t>(data.size()) * 8;
  for (unsigned i = 0; i < 8; ++i)
    tail[tail_len - 1 - i] = static_cast<unsigned char>(bits >> (8U * i));
  st.compress(tail.data());
  if (tail_len == 128) st.compress(tail.data() + 64);

  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const std::uint32_t word : st.h)
    for (int shift = 28; shift >= 0; shift -= 4)
      out += hex[(word >> static_cast<unsigned>(shift)) & 0xFU];
  return out;
}

}  // namespace parbounds
