#include "util/mathx.hpp"

#include <algorithm>

namespace parbounds {

double safe_log2(double x) { return std::log2(std::max(x, 2.0)); }

double safe_loglog2(double x) {
  return std::max(1.0, std::log2(std::log2(std::max(x, 4.0))));
}

double add_log2(double x) { return std::max(0.0, std::log2(std::max(x, 1.0))); }

unsigned log_star(double x) { return log_star_base(x, 2.0); }

unsigned log_star_base(double x, double b) {
  unsigned k = 0;
  // log_b applied repeatedly; 64 iterations is far beyond any tower that a
  // double can represent, so the loop always terminates.
  while (x > 1.0 && k < 64) {
    x = std::log2(x) / std::log2(b);
    ++k;
  }
  return k;
}

double dpow(double x, unsigned k) {
  double r = 1.0;
  while (k-- > 0) r *= x;
  return r;
}

double tower_base(double b, unsigned k, double cap) {
  double r = 1.0;
  while (k-- > 0) {
    if (r > std::log2(cap) / std::log2(std::max(b, 2.0))) return cap;
    r = std::pow(b, r);
    if (r >= cap) return cap;
  }
  return r;
}

}  // namespace parbounds
