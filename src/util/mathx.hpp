#pragma once
// Small math helpers shared across the parbounds library.
//
// Everything here is deliberately simple scalar math: integer logs, the
// iterated logarithm log* that appears in the paper's OR bounds
// (Theorem 7.1, Corollary 7.1), and "safe" logarithms that clamp their
// argument so bound formulas such as g*log(n)/log(g) stay finite when a
// parameter degenerates to 1 (the paper's asymptotic statements assume
// parameters are large; the clamps encode the usual max(2, .) convention).

#include <cstdint>
#include <cmath>

namespace parbounds {

/// Ceiling division for non-negative integers: ceil(a / b), b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// floor(log2(x)) for x >= 1; ilog2(1) == 0.
constexpr unsigned ilog2(std::uint64_t x) {
  unsigned r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1; clog2(1) == 0.
constexpr unsigned clog2(std::uint64_t x) {
  unsigned r = ilog2(x);
  return (std::uint64_t{1} << r) == x ? r : r + 1;
}

/// True iff x is a power of two (x >= 1).
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  std::uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// log2(max(x, 2)): never returns a value below 1. Used in denominators of
/// bound formulas like Corollary 3.1's g*log(n)/log(g).
double safe_log2(double x);

/// log2(log2(max(x, 4))): never below 1. Used for log log denominators.
double safe_loglog2(double x);

/// max(0, log2(x)): an ADDITIVE log term (e.g. the "+ log mu" inside the
/// denominators of Theorems 3.2/7.2) must vanish when its argument is 1,
/// unlike safe_log2 which guards stand-alone denominators.
double add_log2(double x);

/// The iterated logarithm log*(x): the number of times log2 must be applied
/// to x before the result is <= 1. log_star(1) == 0, log_star(2) == 1,
/// log_star(4) == 2, log_star(16) == 3, log_star(65536) == 4.
unsigned log_star(double x);

/// Base-b iterated logarithm log*_b(x) (paper Section 7 uses log*_{mu+1}):
/// number of times log_b must be applied before the result is <= 1.
/// Requires b > 1.
unsigned log_star_base(double x, double b);

/// x^k for small non-negative integer k (integer exponentiation, saturating
/// is the caller's concern; used for small adversary envelope formulas).
double dpow(double x, unsigned k);

/// Tower function: tower_base(b, k) = b^^k (b to itself k times), capped at
/// `cap` to avoid overflow. tower_base(b, 0) == 1.
double tower_base(double b, unsigned k, double cap);

}  // namespace parbounds
