#pragma once
// Plain-text table rendering for the benchmark harness. Every bench binary
// regenerates one of the paper's Table 1 subtables as an aligned console
// table: problem x model x (measured cost, lower-bound value, ratio).

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace parbounds {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision. Rendering pads each column to its widest
/// cell and draws a header rule.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; it is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Format helpers.
  static std::string num(double v, int precision = 2);
  static std::string integer(std::uint64_t v);

  /// Render with 2-space column separation.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner used between benchmark table reproductions.
std::string banner(const std::string& title);

}  // namespace parbounds
