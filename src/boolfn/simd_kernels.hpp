#pragma once
// Runtime-dispatched SIMD kernels for the BoolFn word loops
// (docs/PERF.md, "SIMD kernel dispatch").
//
// Every hot loop in boolfn.cpp — connectives, fix, counting, the GF(2)
// zeta levels and the integer Moebius transform — funnels through the
// function-pointer table below. Three variants exist: portable scalar
// (the reference semantics, always compiled), AVX2 and AVX-512,
// selected by runtime::active_simd_level() (cpuid probe, pinnable via
// PARBOUNDS_SIMD). The wide variants are compiled with per-function
// target attributes and only ever *called* behind the cpuid check, so
// one binary runs everywhere.
//
// Determinism contract: every kernel is exact integer/bitwise work
// whose partial results combine associatively and commutatively
// (XOR/AND/OR lanes, int64 sums, maxima), so AVX2 and AVX-512 are
// bit-identical to portable at any pool size. bench_hotpath's
// dispatch-equivalence oracle and the intra-label gtest enforce this
// on every level the host supports; there is deliberately no kernel
// whose result could depend on lane order.
//
// Range convention: [lo, hi) are WORD indices (64 truth-table entries
// per word) except moebius_level (flattened update indices) and
// max_degree_scan (coefficient indices). Callers shard ranges with
// runtime::ParallelFor; kernels never spawn work themselves.

#include <cstdint>

#include "runtime/simd_level.hpp"

namespace parbounds::simd {

// Bit j of kVarMask[i] is set iff bit i of j is set: the truth table of
// variable x_i restricted to one 64-entry word. These six masks drive
// every in-word step of the transforms.
constexpr std::uint64_t var_mask(unsigned i) {
  std::uint64_t m = 0;
  for (unsigned j = 0; j < 64; ++j)
    if ((j >> i) & 1u) m |= std::uint64_t{1} << j;
  return m;
}
inline constexpr std::uint64_t kVarMask[6] = {var_mask(0), var_mask(1),
                                              var_mask(2), var_mask(3),
                                              var_mask(4), var_mask(5)};

// Bit j set iff popcount(j) is odd: parity of the low six input bits.
constexpr std::uint64_t odd_parity_mask() {
  std::uint64_t m = 0;
  for (unsigned j = 0; j < 64; ++j) {
    unsigned pc = 0;
    for (unsigned b = 0; b < 6; ++b) pc += (j >> b) & 1u;
    if (pc & 1u) m |= std::uint64_t{1} << j;
  }
  return m;
}
inline constexpr std::uint64_t kOddParity = odd_parity_mask();

/// The dispatch seam: one function pointer per word-loop shape.
struct KernelDispatch {
  const char* name;  ///< matches runtime::simd_level_name

  // ----- connectives / fix (disjoint dst ranges) ---------------------------
  /// dst[i] = ~src[i] for i in [lo, hi)
  void (*op_not)(std::uint64_t* dst, const std::uint64_t* src,
                 std::size_t lo, std::size_t hi);
  /// dst[i] = a[i] OP b[i]
  void (*op_and)(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t lo, std::size_t hi);
  void (*op_or)(std::uint64_t* dst, const std::uint64_t* a,
                const std::uint64_t* b, std::size_t lo, std::size_t hi);
  void (*op_xor)(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t lo, std::size_t hi);
  /// In-word variable fix (i < 6): keep the value-v half of each word
  /// and mirror it into the other half. shift = 1<<i, hi_mask =
  /// kVarMask[i]. value picks which half survives.
  void (*fix_low)(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t lo, std::size_t hi, unsigned shift,
                  std::uint64_t hi_mask, bool value);

  // ----- counting ----------------------------------------------------------
  /// sum of popcount(w[i]) over [lo, hi)
  std::uint64_t (*popcount_words)(const std::uint64_t* w, std::size_t lo,
                                  std::size_t hi);
  /// sum over words wi in [lo, hi) with (wi & skip_blk) == 0 of
  ///   sign(wi) * (popcount(b & ~kOddParity) - popcount(b & kOddParity))
  /// where b = w[wi] & keep and sign(wi) = -1 iff popcount(wi) is odd.
  /// keep = ~0 (plain signed sum) or ~kVarMask[i] (level n-1, i < 6);
  /// skip_blk = 0 (no skip) or 1<<(i-6) (level n-1, i >= 6).
  std::int64_t (*signed_sum_words)(const std::uint64_t* w, std::size_t lo,
                                   std::size_t hi, std::uint64_t keep,
                                   std::size_t skip_blk);

  // ----- GF(2) zeta levels -------------------------------------------------
  /// w[i] ^= (w[i] << shift) & mask — the in-word levels (variable < 6)
  void (*gf2_inword)(std::uint64_t* w, std::size_t lo, std::size_t hi,
                     unsigned shift, std::uint64_t mask);
  /// w[i] ^= w[i ^ blk] for i in [lo, hi) with (i & blk) != 0 — the
  /// cross-word levels. Writes only blk-set words, reads only blk-clear
  /// words, so range shards never race.
  void (*gf2_cross)(std::uint64_t* w, std::size_t lo, std::size_t hi,
                    std::size_t blk);

  // ----- integer Moebius / degree ------------------------------------------
  /// One transform level over flattened update indices k in [lo, hi):
  /// with j = k % h and base = (k / h) * 2h, c[base+h+j] -= c[base+j].
  void (*moebius_level)(std::int32_t* c, std::uint64_t lo, std::uint64_t hi,
                        std::uint32_t h);
  /// c[64*wi + j] = bit j of w[wi], as 0/1 int32, for wi in [wlo, whi).
  void (*scatter01)(std::int32_t* c, const std::uint64_t* w, std::size_t wlo,
                    std::size_t whi);
  /// g[64*wi + j] += sgn for every set bit j of slice[wi], wi in
  /// [0, words) — the chunked-degree subset accumulation (sgn = ±1).
  void (*slice_accum)(std::int32_t* g, const std::uint64_t* slice,
                      std::size_t words, std::int32_t sgn);
  /// max over m in [lo, hi) with c[m] != 0 of popcount(m); 0 when the
  /// range is all zero.
  unsigned (*max_degree_scan)(const std::int32_t* c, std::uint32_t lo,
                              std::uint32_t hi);
};

/// The table for an explicit level (the equivalence oracle iterates
/// runtime::supported_simd_levels() through this). Requesting a level
/// above runtime::max_supported_simd_level() returns the portable
/// table — the caller pinned levels via runtime::set_simd_level, which
/// already rejects unsupported tiers.
const KernelDispatch& kernels_for(runtime::SimdLevel level);

/// The table for runtime::active_simd_level() — what boolfn.cpp uses.
inline const KernelDispatch& kernels() {
  return kernels_for(runtime::active_simd_level());
}

}  // namespace parbounds::simd
