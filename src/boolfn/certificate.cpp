#include "boolfn/certificate.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

namespace parbounds {

namespace {

// Subcube patterns are base-3 numbers: digit i in {0, 1, 2} where 2 = '*'.
// Colour codes: 0 = constant-false cube, 1 = constant-true, 2 = mixed.

std::uint64_t pow3(unsigned n) {
  std::uint64_t p = 1;
  while (n-- > 0) p *= 3;
  return p;
}

std::vector<std::uint8_t> monochrome_table(const BoolFn& f) {
  const unsigned n = f.arity();
  if (n > 13)
    throw std::invalid_argument("certificate analysis limited to n <= 13");
  const std::uint64_t total = pow3(n);
  std::vector<std::uint8_t> colour(total);

  // Digit place values for the ternary encoding.
  std::vector<std::uint64_t> place(n);
  for (unsigned i = 0; i < n; ++i) place[i] = pow3(i);

  // Fully-fixed patterns (no '*') are single points; process patterns in
  // increasing number of stars so children are always ready. A pattern's
  // ternary value is processed after its star-free reductions because
  // replacing a '*' (digit 2) by 0 or 1 strictly decreases the encoding;
  // plain ascending order therefore works.
  for (std::uint64_t pat = 0; pat < total; ++pat) {
    // Decode: find the lowest '*' digit if any.
    std::uint64_t rest = pat;
    int star = -1;
    std::uint32_t point = 0;
    for (unsigned i = 0; i < n; ++i) {
      const auto d = static_cast<unsigned>(rest % 3);
      rest /= 3;
      if (d == 2 && star < 0) star = static_cast<int>(i);
      if (d == 1) point |= (std::uint32_t{1} << i);
    }
    if (star < 0) {
      colour[pat] = f(point) ? 1 : 0;
      continue;
    }
    const std::uint64_t child0 = pat - 2 * place[static_cast<unsigned>(star)];
    const std::uint64_t child1 = pat - 1 * place[static_cast<unsigned>(star)];
    const std::uint8_t c0 = colour[child0];
    const std::uint8_t c1 = colour[child1];
    colour[pat] = (c0 == c1) ? c0 : 2;
  }
  return colour;
}

}  // namespace

CertificateAnalysis::CertificateAnalysis(const BoolFn& f) : n_(f.arity()) {
  const auto colour = monochrome_table(f);
  std::vector<std::uint64_t> place(n_);
  for (unsigned i = 0; i < n_; ++i) place[i] = pow3(i);

  // For each subset S of fixed positions, the ternary pattern of point a
  // restricted to S is
  //   all_star - 2 * psum[S] + psum[S & a]
  // where psum[S] = sum of place values over S. Precomputing psum turns
  // the per-(point, subset) pattern rebuild into one add and one lookup.
  const std::uint32_t size = f.table_size();
  std::vector<std::uint64_t> psum(size, 0);
  for (std::uint32_t s = 1; s < size; ++s)
    psum[s] = psum[s & (s - 1)] +
              place[static_cast<unsigned>(std::countr_zero(s))];
  const std::uint64_t all_star = 2 * psum[size - 1];

  // Probe subsets in ascending popcount: the first monochromatic hit is
  // the certificate, so each point stops as early as possible.
  std::vector<std::uint32_t> order(size);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [](std::uint32_t x, std::uint32_t y) {
                     return std::popcount(x) < std::popcount(y);
                   });

  cert_at_.assign(size, n_);
  for (std::uint32_t a = 0; a < size; ++a) {
    unsigned best = n_;
    for (const std::uint32_t s : order) {
      const std::uint64_t pat = all_star - 2 * psum[s] + psum[s & a];
      if (colour[pat] != 2) {
        best = static_cast<unsigned>(std::popcount(s));
        break;
      }
    }
    cert_at_[a] = best;
    cmax_ = std::max(cmax_, best);
  }
}

unsigned certificate_at(const BoolFn& f, std::uint32_t a) {
  return CertificateAnalysis(f).at(a);
}

unsigned certificate_complexity(const BoolFn& f) {
  return CertificateAnalysis(f).max();
}

}  // namespace parbounds
