#include "boolfn/certificate.hpp"

#include <bit>
#include <stdexcept>

namespace parbounds {

namespace {

// Subcube patterns are base-3 numbers: digit i in {0, 1, 2} where 2 = '*'.
// Colour codes: 0 = constant-false cube, 1 = constant-true, 2 = mixed.

std::uint64_t pow3(unsigned n) {
  std::uint64_t p = 1;
  while (n-- > 0) p *= 3;
  return p;
}

std::vector<std::uint8_t> monochrome_table(const BoolFn& f) {
  const unsigned n = f.arity();
  if (n > 13)
    throw std::invalid_argument("certificate analysis limited to n <= 13");
  const std::uint64_t total = pow3(n);
  std::vector<std::uint8_t> colour(total);

  // Digit place values for the ternary encoding.
  std::vector<std::uint64_t> place(n);
  for (unsigned i = 0; i < n; ++i) place[i] = pow3(i);

  // Fully-fixed patterns (no '*') are single points; process patterns in
  // increasing number of stars so children are always ready. A pattern's
  // ternary value is processed after its star-free reductions because
  // replacing a '*' (digit 2) by 0 or 1 strictly decreases the encoding;
  // plain ascending order therefore works.
  for (std::uint64_t pat = 0; pat < total; ++pat) {
    // Decode: find the lowest '*' digit if any.
    std::uint64_t rest = pat;
    int star = -1;
    std::uint32_t point = 0;
    for (unsigned i = 0; i < n; ++i) {
      const auto d = static_cast<unsigned>(rest % 3);
      rest /= 3;
      if (d == 2 && star < 0) star = static_cast<int>(i);
      if (d == 1) point |= (std::uint32_t{1} << i);
    }
    if (star < 0) {
      colour[pat] = f(point) ? 1 : 0;
      continue;
    }
    const std::uint64_t child0 = pat - 2 * place[static_cast<unsigned>(star)];
    const std::uint64_t child1 = pat - 1 * place[static_cast<unsigned>(star)];
    const std::uint8_t c0 = colour[child0];
    const std::uint8_t c1 = colour[child1];
    colour[pat] = (c0 == c1) ? c0 : 2;
  }
  return colour;
}

}  // namespace

CertificateAnalysis::CertificateAnalysis(const BoolFn& f) : n_(f.arity()) {
  const auto colour = monochrome_table(f);
  std::vector<std::uint64_t> place(n_);
  for (unsigned i = 0; i < n_; ++i) place[i] = pow3(i);

  cert_at_.assign(f.table_size(), n_);
  for (std::uint32_t a = 0; a < f.table_size(); ++a) {
    // Enumerate subsets S of fixed positions; the remaining positions are
    // stars. The smallest |S| whose subcube (a restricted to S) is
    // monochromatic is the certificate at a.
    unsigned best = n_;
    const std::uint32_t full = f.table_size() - 1;
    for (std::uint32_t s = 0; s <= full; ++s) {
      const auto k = static_cast<unsigned>(std::popcount(s));
      if (k >= best) continue;
      std::uint64_t pat = 0;
      for (unsigned i = 0; i < n_; ++i) {
        const std::uint32_t bit = std::uint32_t{1} << i;
        if (s & bit)
          pat += place[i] * ((a & bit) ? 1 : 0);
        else
          pat += place[i] * 2;
      }
      if (colour[pat] != 2) best = k;
    }
    cert_at_[a] = best;
    cmax_ = std::max(cmax_, best);
  }
}

unsigned certificate_at(const BoolFn& f, std::uint32_t a) {
  return CertificateAnalysis(f).at(a);
}

unsigned certificate_complexity(const BoolFn& f) {
  return CertificateAnalysis(f).max();
}

}  // namespace parbounds
