#pragma once
// Boolean functions as dense truth tables (Section 2.5).
//
// The paper's degree arguments (Theorems 3.1, 7.2, and the round bounds of
// Section 6.3) rest on three facts about the unique integer multilinear
// representation f = sum_S alpha_S(f) * m_S (Fact 2.1 [Smolensky]):
// composition bounds on deg (Fact 2.2 [Dietzfelbinger et al.]), and the
// certificate-complexity bound C(f) <= deg(f)^4 (Fact 2.3, via Nisan).
// This module makes all of that executable — exactly, in integers — for
// n up to kMaxArity variables.
//
// Layout: the truth table is bit-packed, 64 assignments per uint64_t
// word; bit (x & 63) of word (x >> 6) is f(x). All connectives, fixing,
// dependence tests and the degree transforms operate word-parallel on
// this layout. The class maintains the invariant that bits at positions
// >= 2^n (possible only for n < 6, where the table occupies part of one
// word) are zero, which makes operator== a plain word compare.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace parbounds {

/// A Boolean function on n variables stored as a bit-packed 2^n truth
/// table. Input assignments are bitmasks: bit i of x is the value of
/// variable x_i.
class BoolFn {
 public:
  /// Largest supported arity: 2^30 table bits = 128 MiB packed. The
  /// exact integer degree is still computable here without materialising
  /// a 2^30 coefficient array — degree() streams 2^22-entry slices of it
  /// and skips all-zero slices, so the coefficient working set stays at
  /// 16 MiB no matter the arity (see chunked_degree_impl in boolfn.cpp).
  static constexpr unsigned kMaxArity = 30;

  /// Constant-false function on n variables.
  explicit BoolFn(unsigned n);

  unsigned arity() const { return n_; }
  std::uint32_t table_size() const { return std::uint32_t{1} << n_; }

  bool operator()(std::uint32_t x) const {
    return ((words_[x >> 6] >> (x & 63u)) & 1u) != 0;
  }
  void set(std::uint32_t x, bool v) {
    const std::uint64_t bit = std::uint64_t{1} << (x & 63u);
    if (v)
      words_[x >> 6] |= bit;
    else
      words_[x >> 6] &= ~bit;
  }

  bool operator==(const BoolFn& o) const = default;

  /// Number of satisfying assignments (one popcount per word).
  std::uint64_t count_ones() const;

  /// Packed truth-table words, least-significant assignment first.
  std::span<const std::uint64_t> words() const { return words_; }

  // ----- families ---------------------------------------------------------
  static BoolFn constant(unsigned n, bool v);
  static BoolFn variable(unsigned n, unsigned i);
  static BoolFn parity(unsigned n);   ///< XOR of all n inputs; deg = n
  static BoolFn or_fn(unsigned n);    ///< OR of all n inputs; deg = n
  static BoolFn and_fn(unsigned n);   ///< AND of all n inputs; deg = n
  static BoolFn threshold(unsigned n, unsigned k);  ///< >= k ones
  /// Address function on k + 2^k variables: the first k bits select one of
  /// the remaining 2^k bits. A classic function with low certificate
  /// complexity relative to arity.
  static BoolFn address(unsigned k);
  static BoolFn from(unsigned n, const std::function<bool(std::uint32_t)>& f);
  static BoolFn random(unsigned n, Rng& rng);

  // ----- connectives (Fact 2.2 subjects) -----------------------------------
  BoolFn operator~() const;
  BoolFn operator&(const BoolFn& o) const;
  BoolFn operator|(const BoolFn& o) const;
  BoolFn operator^(const BoolFn& o) const;

  /// Fix variable i to value v; the result keeps arity n with the variable
  /// made irrelevant (matches Fact 2.2 (4): g results from f by fixing
  /// inputs, and deg(g) <= deg(f)).
  BoolFn fix(unsigned i, bool v) const;

  /// True when variable i is relevant (some input pair differing only in i
  /// changes the value).
  bool depends_on(unsigned i) const;

 private:
  unsigned n_;
  std::vector<std::uint64_t> words_;
};

/// Integer multilinear coefficients alpha_S(f), indexed by subset bitmask
/// (Fact 2.1). Computed by the subset Moebius transform of the truth
/// table. Materialises 2^n int64 values, so it keeps the historical n <= 24
/// domain; degree() below goes higher without this array.
std::vector<std::int64_t> multilinear_coeffs(const BoolFn& f);

/// deg(f) = max{|S| : alpha_S(f) != 0}; deg(constant) == 0. Exact for
/// every arity up to BoolFn::kMaxArity.
unsigned degree(const BoolFn& f);

/// Degree of the GF(2) (Moebius/Zeta over xor) polynomial of f — a lower
/// bound on deg(f), since an odd integer coefficient is in particular
/// nonzero. Computed fully word-parallel; used as a fast path by degree().
unsigned gf2_degree(const BoolFn& f);

/// Evaluate the multilinear polynomial sum_S alpha_S * m_S(x); must agree
/// with the truth table on every 0/1 input (uniqueness, Fact 2.1).
std::int64_t eval_multilinear(const std::vector<std::int64_t>& coeffs,
                              std::uint32_t x);

namespace detail {

/// Test seams for the dense/chunked degree boundary. degree() switches
/// tiers at n = 22/23; these run a chosen tier on any arity in its
/// domain so the boundary can be cross-checked (both tiers on the same
/// function must agree with each other and with degree()).
/// degree_via_dense throws above n = 24 (it materialises 2^n int32
/// coefficients); degree_via_chunked throws below n = 7 (it needs a
/// >= 6-variable low block plus at least one high variable).
unsigned degree_via_dense(const BoolFn& f);
unsigned degree_via_chunked(const BoolFn& f);

}  // namespace detail

}  // namespace parbounds
