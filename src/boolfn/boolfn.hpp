#pragma once
// Boolean functions as dense truth tables (Section 2.5).
//
// The paper's degree arguments (Theorems 3.1, 7.2, and the round bounds of
// Section 6.3) rest on three facts about the unique integer multilinear
// representation f = sum_S alpha_S(f) * m_S (Fact 2.1 [Smolensky]):
// composition bounds on deg (Fact 2.2 [Dietzfelbinger et al.]), and the
// certificate-complexity bound C(f) <= deg(f)^4 (Fact 2.3, via Nisan).
// This module makes all of that executable for n up to ~20 variables so
// the facts — and the degree-growth invariants the lower-bound proofs
// rely on — can be checked exactly on real functions.

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace parbounds {

/// A Boolean function on n variables stored as a 2^n truth table.
/// Input assignments are bitmasks: bit i of x is the value of variable x_i.
class BoolFn {
 public:
  /// Constant-false function on n variables.
  explicit BoolFn(unsigned n);

  unsigned arity() const { return n_; }
  std::uint32_t table_size() const { return std::uint32_t{1} << n_; }

  bool operator()(std::uint32_t x) const { return tt_[x] != 0; }
  void set(std::uint32_t x, bool v) { tt_[x] = v ? 1 : 0; }

  bool operator==(const BoolFn& o) const = default;

  // ----- families ---------------------------------------------------------
  static BoolFn constant(unsigned n, bool v);
  static BoolFn variable(unsigned n, unsigned i);
  static BoolFn parity(unsigned n);   ///< XOR of all n inputs; deg = n
  static BoolFn or_fn(unsigned n);    ///< OR of all n inputs; deg = n
  static BoolFn and_fn(unsigned n);   ///< AND of all n inputs; deg = n
  static BoolFn threshold(unsigned n, unsigned k);  ///< >= k ones
  /// Address function on k + 2^k variables: the first k bits select one of
  /// the remaining 2^k bits. A classic function with low certificate
  /// complexity relative to arity.
  static BoolFn address(unsigned k);
  static BoolFn from(unsigned n, const std::function<bool(std::uint32_t)>& f);
  static BoolFn random(unsigned n, Rng& rng);

  // ----- connectives (Fact 2.2 subjects) -----------------------------------
  BoolFn operator~() const;
  BoolFn operator&(const BoolFn& o) const;
  BoolFn operator|(const BoolFn& o) const;
  BoolFn operator^(const BoolFn& o) const;

  /// Fix variable i to value v; the result keeps arity n with the variable
  /// made irrelevant (matches Fact 2.2 (4): g results from f by fixing
  /// inputs, and deg(g) <= deg(f)).
  BoolFn fix(unsigned i, bool v) const;

  /// True when variable i is relevant (some input pair differing only in i
  /// changes the value).
  bool depends_on(unsigned i) const;

 private:
  unsigned n_;
  std::vector<std::uint8_t> tt_;
};

/// Integer multilinear coefficients alpha_S(f), indexed by subset bitmask
/// (Fact 2.1). Computed by the subset Moebius transform of the truth table.
std::vector<std::int64_t> multilinear_coeffs(const BoolFn& f);

/// deg(f) = max{|S| : alpha_S(f) != 0}; deg(constant) == 0.
unsigned degree(const BoolFn& f);

/// Evaluate the multilinear polynomial sum_S alpha_S * m_S(x); must agree
/// with the truth table on every 0/1 input (uniqueness, Fact 2.1).
std::int64_t eval_multilinear(const std::vector<std::int64_t>& coeffs,
                              std::uint32_t x);

}  // namespace parbounds
