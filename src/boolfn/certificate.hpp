#pragma once
// Certificate complexity C(f), Section 2.5 (after Nisan [20]).
//
// For an input a, the certificate size at a is the least k such that some
// set S of k variables has: every input b agreeing with a on S satisfies
// f(b) = f(a). C(f) is the maximum certificate size over all inputs.
// Fact 2.3 ([Dietzfelbinger et al.]): C(f) <= deg(f)^4 — the inequality
// the Random Adversary's Claim 5.2 leans on (|Cert| <= deg(States)^4).
//
// Implementation: a subcube of {0,1}^n is a pattern in {0,1,*}^n. We mark
// every monochromatic subcube bottom-up over the 3^n patterns (a cube with
// a * at position i is monochromatic iff both of its i-children are, with
// equal colour), then read off, per input, the smallest number of fixed
// positions among monochromatic subcubes containing it. Exact for
// n <= ~13 (3^13 ~ 1.6M patterns).

#include <cstdint>
#include <vector>

#include "boolfn/boolfn.hpp"

namespace parbounds {

/// Certificate size at input a (exact; n <= 13).
unsigned certificate_at(const BoolFn& f, std::uint32_t a);

/// C(f) = max_a certificate_at(f, a) (exact; n <= 13).
unsigned certificate_complexity(const BoolFn& f);

/// Precomputed analysis when many queries are made against one function.
class CertificateAnalysis {
 public:
  explicit CertificateAnalysis(const BoolFn& f);

  unsigned at(std::uint32_t a) const { return cert_at_[a]; }
  unsigned max() const { return cmax_; }

 private:
  unsigned n_;
  std::vector<unsigned> cert_at_;
  unsigned cmax_ = 0;
};

}  // namespace parbounds
