#include "boolfn/boolfn.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>
#include <string>

#include "boolfn/simd_kernels.hpp"
#include "runtime/parallel_for.hpp"

namespace parbounds {

namespace {

using simd::kOddParity;
using simd::kVarMask;

// Table size (in words or coefficients) below which a transform stays
// serial: 2^14 words = n >= 20. Small tables are not worth a pool trip.
constexpr std::size_t kParWords = std::size_t{1} << 14;
constexpr unsigned kParShards = 8;

// Fan a word/coefficient-range loop out over the process pool when the
// table is large. Every call site either writes disjoint ranges or
// combines per-shard results with exact commutative operations (integer
// sums, maxima), so results are bit-identical at any thread count; the
// partition itself is the pool's static one (pure function of n).
template <class F>
void for_ranges(std::size_t n, F&& body) {
  auto& pool = runtime::ParallelFor::pool();
  const unsigned shards =
      runtime::ParallelFor::shard_count(n, kParWords, kParShards);
  if (shards <= 1 || pool.threads() <= 1) {
    body(0u, std::size_t{0}, n);
    return;
  }
  pool.for_shards(n, shards,
                  [&](unsigned s, std::uint64_t lo, std::uint64_t hi) {
                    body(s, static_cast<std::size_t>(lo),
                         static_cast<std::size_t>(hi));
                  });
}

std::size_t word_count(unsigned n) {
  return n >= 6 ? std::size_t{1} << (n - 6) : 1;
}

// Valid-bit mask of the last (only) word when the table is shorter than
// one word; all-ones otherwise.
std::uint64_t tail_mask(unsigned n) {
  return n >= 6 ? ~std::uint64_t{0}
                : (std::uint64_t{1} << (std::uint32_t{1} << n)) - 1;
}

// Largest arity for which degree() materialises the full 2^n int32
// coefficient array (16 MiB at 22). Above it, the transform is chunked
// over the high variables so memory stays at one 2^22 slice.
constexpr unsigned kDenseDegreeArity = 22;

// sum over x of (-1)^popcount(x) * f(x), the (sign-normalised) top
// multilinear coefficient. Word-parallel: within a word the sign is the
// parity of the low six bits (kOddParity), across words the parity of
// the word index. The kernel folds both parities in one pass.
std::int64_t signed_sum(std::span<const std::uint64_t> w) {
  const auto& k = simd::kernels();
  std::array<std::int64_t, kParShards> part{};
  for_ranges(w.size(), [&](unsigned sh, std::size_t lo, std::size_t hi) {
    part[sh] = k.signed_sum_words(w.data(), lo, hi, ~std::uint64_t{0}, 0);
  });
  std::int64_t s = 0;
  for (const std::int64_t p : part) s += p;
  return s;
}

// sum over x with x_i == 0 of (-1)^popcount(x) * f(x): the level-(n-1)
// coefficient for S = {0..n-1} \ {i}, up to sign. Low variables mask
// bits inside each word, high variables skip whole word blocks.
std::int64_t signed_sum_without(std::span<const std::uint64_t> w, unsigned i) {
  const auto& k = simd::kernels();
  const std::uint64_t keep = i < 6 ? ~kVarMask[i] : ~std::uint64_t{0};
  const std::size_t skip_blk = i < 6 ? 0 : std::size_t{1} << (i - 6);
  std::array<std::int64_t, kParShards> part{};
  for_ranges(w.size(), [&](unsigned sh, std::size_t lo, std::size_t hi) {
    part[sh] = k.signed_sum_words(w.data(), lo, hi, keep, skip_blk);
  });
  std::int64_t s = 0;
  for (const std::int64_t p : part) s += p;
  return s;
}

// In-place integer Moebius transform over t variables with unit-stride
// inner loops: after the pass, c[S] = alpha_S. Each level performs
// size/2 independent updates (the written index base+h+j has the h bit
// set, the read index base+j has it clear and is never written this
// level), so levels fan out over the pool as flattened index ranges —
// every update happens exactly once, results bit-identical at any
// thread count.
void moebius_i32(std::vector<std::int32_t>& c, unsigned t) {
  const std::uint32_t size = std::uint32_t{1} << t;
  const std::uint64_t half = size / 2;
  const auto& k = simd::kernels();
  auto& pool = runtime::ParallelFor::pool();
  if (half < kParWords || pool.threads() <= 1 ||
      runtime::ParallelFor::in_pool_worker()) {
    for (std::uint32_t h = 1; h < size; h <<= 1)
      k.moebius_level(c.data(), 0, half, h);
    return;
  }
  for (std::uint32_t h = 1; h < size; h <<= 1) {
    pool.for_shards(half, kParShards,
                    [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                      k.moebius_level(c.data(), lo, hi, h);
                    });
  }
}

// Exact degree via the full dense transform (arity <= the seam's cap).
// Scatter (one word fills its own 64 coefficients), transform, and the
// max-scan all shard over disjoint / commutatively-combined ranges.
unsigned dense_degree_impl(const BoolFn& f) {
  const std::uint32_t size = f.table_size();
  std::vector<std::int32_t> c(size, 0);
  const auto w = f.words();
  const auto& k = simd::kernels();
  if (size < 64) {
    // Sub-word table (n < 6): scatter the set bits directly; bits at
    // positions >= 2^n are zero by the class invariant.
    std::uint64_t bits = w[0];
    while (bits != 0) {
      const unsigned j = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      c[j] = 1;
    }
  } else {
    for_ranges(w.size(), [&](unsigned, std::size_t lo, std::size_t hi) {
      k.scatter01(c.data(), w.data(), lo, hi);
    });
  }
  moebius_i32(c, f.arity());
  std::array<unsigned, kParShards> part{};
  for_ranges(size, [&](unsigned sh, std::size_t lo, std::size_t hi) {
    part[sh] = k.max_degree_scan(c.data(), static_cast<std::uint32_t>(lo),
                                 static_cast<std::uint32_t>(hi));
  });
  unsigned best = 0;
  for (const unsigned b : part) best = std::max(best, b);
  return best;
}

// Exact degree for n > t: split the inputs into t low and n-t high
// variables. The Moebius transform separates, so for each high subset
// Sh the slice combination
//   g_Sh(xl) = sum_{Th subseteq Sh} (-1)^{|Sh \ Th|} f(xl, Th)
// followed by a t-variable transform of g_Sh yields exactly the
// coefficients alpha_{(Sl, Sh)}. Bounds: |g_Sh| <= 2^(n-t) and
// |alpha| <= 2^n <= 2^30, so int32 never overflows.
//
// The high subsets fan out over the pool, each worker with its own
// slice buffer and its own prune bound: `part[shard]` is a shard-local
// maximum, merged serially after the join. Pruning a subset against the
// shard-local bound is sound (a skipped Sh could contribute at most
// hi_pc + t <= the shard's own maximum <= the final answer), and —
// unlike the shared-atomic bound this replaces — the set of subsets a
// shard actually expands is a pure function of its range, so the work
// done and the result are bit-identical at any thread count.
//
// Slices that are identically zero are detected once up front and
// skipped in every subset expansion; a subset whose contributing slices
// are all zero has g_Sh == 0 before the (linear) transform and is
// skipped entirely — the streaming pass never touches those words
// again. This is what keeps the out-of-core arities (n up to
// kMaxArity = 30, 2^8 slices) affordable for structured functions.
unsigned chunked_degree_impl(const BoolFn& f, unsigned t) {
  const unsigned n = f.arity();
  const std::uint32_t hi_count = std::uint32_t{1} << (n - t);
  const std::size_t slice_words = std::size_t{1} << (t - 6);
  const auto w = f.words();
  const auto& k = simd::kernels();
  std::vector<std::uint8_t> slice_nonzero(hi_count, 0);
  for (std::uint32_t th = 0; th < hi_count; ++th) {
    const std::uint64_t* slice = w.data() + std::size_t{th} * slice_words;
    for (std::size_t wi = 0; wi < slice_words; ++wi) {
      if (slice[wi] != 0) {
        slice_nonzero[th] = 1;
        break;
      }
    }
  }
  std::array<unsigned, kParShards> part{};
  const auto run = [&](unsigned shard, std::uint32_t sh_lo,
                       std::uint32_t sh_hi) {
    std::vector<std::int32_t> g(std::uint32_t{1} << t);
    unsigned best = 0;  // shard-local prune bound
    for (std::uint32_t sh = sh_lo; sh < sh_hi; ++sh) {
      const unsigned hi_pc = static_cast<unsigned>(std::popcount(sh));
      if (hi_pc + t <= best) continue;  // cannot beat the shard maximum
      std::fill(g.begin(), g.end(), 0);
      bool any = false;
      std::uint32_t th = sh;
      while (true) {
        if (slice_nonzero[th] != 0) {
          const std::int32_t sgn = (std::popcount(sh ^ th) & 1u) ? -1 : 1;
          k.slice_accum(g.data(),
                        w.data() + std::size_t{th} * slice_words,
                        slice_words, sgn);
          any = true;
        }
        if (th == 0) break;
        th = (th - 1) & sh;
      }
      if (!any) continue;  // g_Sh == 0: no coefficient with this high part
      moebius_i32(g, t);  // runs inline inside a pool worker
      const unsigned d = k.max_degree_scan(
          g.data(), 0, static_cast<std::uint32_t>(g.size()));
      // d == 0 means either all-zero or only the empty low set survives;
      // g[0] distinguishes the two (any other nonzero entry forces d > 0).
      if (d > 0)
        best = std::max(best, hi_pc + d);
      else if (g[0] != 0)
        best = std::max(best, hi_pc);
    }
    part[shard] = best;
  };
  auto& pool = runtime::ParallelFor::pool();
  const unsigned shards = std::min<std::uint32_t>(hi_count, kParShards);
  if (pool.threads() > 1 && shards > 1) {
    pool.for_shards(hi_count, shards,
                    [&](unsigned s, std::uint64_t lo, std::uint64_t hi) {
                      run(s, static_cast<std::uint32_t>(lo),
                          static_cast<std::uint32_t>(hi));
                    });
  } else {
    run(0, 0, hi_count);
  }
  unsigned best = 0;
  for (const unsigned b : part) best = std::max(best, b);
  return best;
}

}  // namespace

namespace detail {

unsigned degree_via_dense(const BoolFn& f) {
  if (f.arity() > 24)
    throw std::invalid_argument(
        "degree_via_dense materialises 2^n int32 coefficients; capped at "
        "n = 24");
  return dense_degree_impl(f);
}

unsigned degree_via_chunked(const BoolFn& f) {
  const unsigned n = f.arity();
  if (n < 7)
    throw std::invalid_argument(
        "degree_via_chunked needs at least one high variable over a "
        ">= 6-variable low block (n >= 7)");
  const unsigned t = std::min(kDenseDegreeArity, n - 1);
  return chunked_degree_impl(f, t);
}

}  // namespace detail

BoolFn::BoolFn(unsigned n) : n_(n) {
  if (n > kMaxArity)
    throw std::invalid_argument("BoolFn arity limited to " +
                                std::to_string(kMaxArity));
  words_.assign(word_count(n), 0);
}

std::uint64_t BoolFn::count_ones() const {
  const auto& k = simd::kernels();
  std::array<std::uint64_t, kParShards> part{};
  for_ranges(words_.size(), [&](unsigned s, std::size_t lo, std::size_t hi) {
    part[s] = k.popcount_words(words_.data(), lo, hi);
  });
  std::uint64_t c = 0;
  for (const std::uint64_t p : part) c += p;
  return c;
}

BoolFn BoolFn::constant(unsigned n, bool v) {
  BoolFn f(n);
  if (v) {
    std::fill(f.words_.begin(), f.words_.end(), ~std::uint64_t{0});
    f.words_.back() &= tail_mask(n);
  }
  return f;
}

BoolFn BoolFn::variable(unsigned n, unsigned i) {
  BoolFn f(n);
  if (i < 6) {
    std::fill(f.words_.begin(), f.words_.end(), kVarMask[i]);
    f.words_.back() &= tail_mask(n);
  } else {
    const std::size_t blk = std::size_t{1} << (i - 6);
    for (std::size_t wi = 0; wi < f.words_.size(); ++wi)
      if ((wi & blk) != 0) f.words_[wi] = ~std::uint64_t{0};
  }
  return f;
}

BoolFn BoolFn::parity(unsigned n) {
  BoolFn f(n);
  for (std::size_t wi = 0; wi < f.words_.size(); ++wi)
    f.words_[wi] =
        (std::popcount(wi) & 1u) ? ~kOddParity : kOddParity;
  f.words_.back() &= tail_mask(n);
  return f;
}

BoolFn BoolFn::or_fn(unsigned n) {
  BoolFn f = constant(n, true);
  f.words_.front() &= ~std::uint64_t{1};  // f(0...0) = 0
  return f;
}

BoolFn BoolFn::and_fn(unsigned n) {
  // Exactly one satisfying assignment: the all-ones input.
  BoolFn f(n);
  f.set((std::uint32_t{1} << n) - 1, true);
  return f;
}

BoolFn BoolFn::threshold(unsigned n, unsigned k) {
  return from(n, [k](std::uint32_t x) {
    return static_cast<unsigned>(std::popcount(x)) >= k;
  });
}

BoolFn BoolFn::address(unsigned k) {
  const unsigned n = k + (1u << k);
  const std::uint32_t sel_mask = (std::uint32_t{1} << k) - 1;
  return from(n, [k, sel_mask](std::uint32_t x) {
    const std::uint32_t sel = x & sel_mask;
    return ((x >> (k + sel)) & 1u) != 0;
  });
}

BoolFn BoolFn::from(unsigned n,
                    const std::function<bool(std::uint32_t)>& f) {
  BoolFn g(n);
  const std::uint32_t size = g.table_size();
  for (std::size_t wi = 0; wi < g.words_.size(); ++wi) {
    const std::uint32_t base = static_cast<std::uint32_t>(wi) << 6;
    const std::uint32_t lim = std::min<std::uint32_t>(size - base, 64);
    std::uint64_t acc = 0;
    for (std::uint32_t j = 0; j < lim; ++j)
      if (f(base | j)) acc |= std::uint64_t{1} << j;
    g.words_[wi] = acc;
  }
  return g;
}

BoolFn BoolFn::random(unsigned n, Rng& rng) {
  // One next_bool() per table entry in ascending order — the sampled
  // function for a given generator state is part of the observable
  // behavior (tests and benches pin it).
  BoolFn g(n);
  const std::uint32_t size = g.table_size();
  for (std::size_t wi = 0; wi < g.words_.size(); ++wi) {
    const std::uint32_t base = static_cast<std::uint32_t>(wi) << 6;
    const std::uint32_t lim = std::min<std::uint32_t>(size - base, 64);
    std::uint64_t acc = 0;
    for (std::uint32_t j = 0; j < lim; ++j)
      if (rng.next_bool()) acc |= std::uint64_t{1} << j;
    g.words_[wi] = acc;
  }
  return g;
}

BoolFn BoolFn::operator~() const {
  const auto& k = simd::kernels();
  BoolFn g(n_);
  for_ranges(words_.size(), [&](unsigned, std::size_t lo, std::size_t hi) {
    k.op_not(g.words_.data(), words_.data(), lo, hi);
  });
  g.words_.back() &= tail_mask(n_);
  return g;
}

namespace {
void check_same_arity(const BoolFn& a, const BoolFn& b) {
  if (a.arity() != b.arity())
    throw std::invalid_argument("BoolFn arity mismatch");
}
}  // namespace

BoolFn BoolFn::operator&(const BoolFn& o) const {
  check_same_arity(*this, o);
  const auto& k = simd::kernels();
  BoolFn g(n_);
  for_ranges(words_.size(), [&](unsigned, std::size_t lo, std::size_t hi) {
    k.op_and(g.words_.data(), words_.data(), o.words_.data(), lo, hi);
  });
  return g;
}

BoolFn BoolFn::operator|(const BoolFn& o) const {
  check_same_arity(*this, o);
  const auto& k = simd::kernels();
  BoolFn g(n_);
  for_ranges(words_.size(), [&](unsigned, std::size_t lo, std::size_t hi) {
    k.op_or(g.words_.data(), words_.data(), o.words_.data(), lo, hi);
  });
  return g;
}

BoolFn BoolFn::operator^(const BoolFn& o) const {
  check_same_arity(*this, o);
  const auto& k = simd::kernels();
  BoolFn g(n_);
  for_ranges(words_.size(), [&](unsigned, std::size_t lo, std::size_t hi) {
    k.op_xor(g.words_.data(), words_.data(), o.words_.data(), lo, hi);
  });
  return g;
}

BoolFn BoolFn::fix(unsigned i, bool v) const {
  const auto& k = simd::kernels();
  BoolFn g(n_);
  if (i < 6) {
    // Gather the kept half of each word and mirror it into both halves
    // of the i-th bit so the variable becomes irrelevant.
    const unsigned s = 1u << i;
    const std::uint64_t hi = kVarMask[i];
    for_ranges(words_.size(), [&](unsigned, std::size_t lo, std::size_t hi2) {
      k.fix_low(g.words_.data(), words_.data(), lo, hi2, s, hi, v);
    });
    g.words_.back() &= tail_mask(n_);
  } else {
    const std::size_t blk = std::size_t{1} << (i - 6);
    for_ranges(words_.size(), [&](unsigned, std::size_t lo, std::size_t hi2) {
      for (std::size_t wi = lo; wi < hi2; ++wi)
        g.words_[wi] = words_[v ? (wi | blk) : (wi & ~blk)];
    });
  }
  return g;
}

bool BoolFn::depends_on(unsigned i) const {
  if (i >= n_) return false;
  if (i < 6) {
    const unsigned s = 1u << i;
    for (const std::uint64_t w : words_)
      if ((((w >> s) ^ w) & ~kVarMask[i]) != 0) return true;
    return false;
  }
  const std::size_t blk = std::size_t{1} << (i - 6);
  for (std::size_t wi = 0; wi < words_.size(); ++wi)
    if ((wi & blk) == 0 && words_[wi] != words_[wi | blk]) return true;
  return false;
}

std::vector<std::int64_t> multilinear_coeffs(const BoolFn& f) {
  if (f.arity() > 24)
    throw std::invalid_argument(
        "multilinear_coeffs materialises 2^n int64 values; use degree() "
        "beyond n = 24");
  const std::uint32_t size = f.table_size();
  std::vector<std::int64_t> c(size, 0);
  const auto w = f.words();
  for (std::size_t wi = 0; wi < w.size(); ++wi) {
    std::uint64_t bits = w[wi];
    while (bits != 0) {
      const unsigned j = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      c[(static_cast<std::uint32_t>(wi) << 6) | j] = 1;
    }
  }
  // In-place subset Moebius transform: alpha_S = sum_{T subseteq S}
  // (-1)^{|S\T|} f(1_T). Uniqueness of the representation is Fact 2.1.
  // Blocked so every inner loop is unit-stride.
  for (std::uint32_t h = 1; h < size; h <<= 1)
    for (std::uint32_t base = 0; base < size; base += 2 * h)
      for (std::uint32_t j = 0; j < h; ++j)
        c[base + h + j] -= c[base + j];
  return c;
}

unsigned gf2_degree(const BoolFn& f) {
  const unsigned n = f.arity();
  const auto& k = simd::kernels();
  std::vector<std::uint64_t> w(f.words().begin(), f.words().end());
  // XOR zeta transform: the GF(2) Moebius transform is its own inverse
  // and needs no subtraction, so it runs fully word-parallel. The
  // in-word levels are independent per word; a cross-word level writes
  // only words with the blk bit set and reads only words with it clear,
  // so word-range shards never race and every level is exact.
  for (unsigned i = 0; i < n && i < 6; ++i) {
    const unsigned s = 1u << i;
    for_ranges(w.size(), [&](unsigned, std::size_t lo, std::size_t hi) {
      k.gf2_inword(w.data(), lo, hi, s, kVarMask[i]);
    });
  }
  for (unsigned i = 6; i < n; ++i) {
    const std::size_t blk = std::size_t{1} << (i - 6);
    for_ranges(w.size(), [&](unsigned, std::size_t lo, std::size_t hi) {
      k.gf2_cross(w.data(), lo, hi, blk);
    });
  }
  std::array<unsigned, kParShards> part{};
  for_ranges(w.size(), [&](unsigned sh, std::size_t lo, std::size_t hi2) {
    unsigned b = 0;
    for (std::size_t wi = lo; wi < hi2; ++wi) {
      std::uint64_t bits = w[wi];
      if (bits == 0) continue;
      const unsigned hi = static_cast<unsigned>(std::popcount(wi));
      if (hi + 6 <= b) continue;  // even six low bits cannot improve
      while (bits != 0) {
        const unsigned j = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        b = std::max(b, hi + static_cast<unsigned>(std::popcount(j)));
      }
    }
    part[sh] = b;
  });
  unsigned best = 0;
  for (const unsigned b : part) best = std::max(best, b);
  return best;
}

unsigned degree(const BoolFn& f) {
  const unsigned n = f.arity();
  const std::uint64_t ones = f.count_ones();
  if (ones == 0 || ones == f.table_size()) return 0;  // constants
  // Level n: alpha_{full} != 0 iff the signed truth-table sum is nonzero.
  if (signed_sum(f.words()) != 0) return n;
  // GF(2) lower bound: an odd integer coefficient is nonzero, so
  // deg(f) >= gf2_degree(f); and alpha_full = 0 caps deg(f) at n-1.
  if (gf2_degree(f) == n - 1) return n - 1;
  // Exact level n-1: one masked signed sum per dropped variable.
  for (unsigned i = 0; i < n; ++i)
    if (signed_sum_without(f.words(), i) != 0) return n - 1;
  // Degree is now <= n-2: take the dense transform when the coefficient
  // array fits comfortably, else chunk over the high variables.
  if (n <= kDenseDegreeArity) return dense_degree_impl(f);
  return chunked_degree_impl(f, kDenseDegreeArity);
}

std::int64_t eval_multilinear(const std::vector<std::int64_t>& coeffs,
                              std::uint32_t x) {
  std::int64_t v = 0;
  for (std::uint32_t mask = 0; mask < coeffs.size(); ++mask)
    if (coeffs[mask] != 0 && (mask & x) == mask) v += coeffs[mask];
  return v;
}

}  // namespace parbounds
