#include "boolfn/boolfn.hpp"

#include <bit>
#include <stdexcept>

namespace parbounds {

BoolFn::BoolFn(unsigned n) : n_(n) {
  if (n > 24) throw std::invalid_argument("BoolFn arity limited to 24");
  tt_.assign(std::size_t{1} << n, 0);
}

BoolFn BoolFn::constant(unsigned n, bool v) {
  BoolFn f(n);
  if (v) std::fill(f.tt_.begin(), f.tt_.end(), std::uint8_t{1});
  return f;
}

BoolFn BoolFn::variable(unsigned n, unsigned i) {
  return from(n, [i](std::uint32_t x) { return ((x >> i) & 1u) != 0; });
}

BoolFn BoolFn::parity(unsigned n) {
  return from(n, [](std::uint32_t x) { return (std::popcount(x) & 1) != 0; });
}

BoolFn BoolFn::or_fn(unsigned n) {
  return from(n, [](std::uint32_t x) { return x != 0; });
}

BoolFn BoolFn::and_fn(unsigned n) {
  const std::uint32_t all = (n == 32) ? ~0u : ((std::uint32_t{1} << n) - 1);
  return from(n, [all](std::uint32_t x) { return x == all; });
}

BoolFn BoolFn::threshold(unsigned n, unsigned k) {
  return from(n, [k](std::uint32_t x) {
    return static_cast<unsigned>(std::popcount(x)) >= k;
  });
}

BoolFn BoolFn::address(unsigned k) {
  const unsigned n = k + (1u << k);
  const std::uint32_t sel_mask = (std::uint32_t{1} << k) - 1;
  return from(n, [k, sel_mask](std::uint32_t x) {
    const std::uint32_t sel = x & sel_mask;
    return ((x >> (k + sel)) & 1u) != 0;
  });
}

BoolFn BoolFn::from(unsigned n,
                    const std::function<bool(std::uint32_t)>& f) {
  BoolFn g(n);
  for (std::uint32_t x = 0; x < g.table_size(); ++x) g.tt_[x] = f(x) ? 1 : 0;
  return g;
}

BoolFn BoolFn::random(unsigned n, Rng& rng) {
  BoolFn g(n);
  for (auto& b : g.tt_) b = rng.next_bool() ? 1 : 0;
  return g;
}

BoolFn BoolFn::operator~() const {
  BoolFn g(n_);
  for (std::uint32_t x = 0; x < table_size(); ++x) g.tt_[x] = tt_[x] ^ 1u;
  return g;
}

namespace {
void check_same_arity(const BoolFn& a, const BoolFn& b) {
  if (a.arity() != b.arity())
    throw std::invalid_argument("BoolFn arity mismatch");
}
}  // namespace

BoolFn BoolFn::operator&(const BoolFn& o) const {
  check_same_arity(*this, o);
  BoolFn g(n_);
  for (std::uint32_t x = 0; x < table_size(); ++x)
    g.tt_[x] = tt_[x] & o.tt_[x];
  return g;
}

BoolFn BoolFn::operator|(const BoolFn& o) const {
  check_same_arity(*this, o);
  BoolFn g(n_);
  for (std::uint32_t x = 0; x < table_size(); ++x)
    g.tt_[x] = tt_[x] | o.tt_[x];
  return g;
}

BoolFn BoolFn::operator^(const BoolFn& o) const {
  check_same_arity(*this, o);
  BoolFn g(n_);
  for (std::uint32_t x = 0; x < table_size(); ++x)
    g.tt_[x] = tt_[x] ^ o.tt_[x];
  return g;
}

BoolFn BoolFn::fix(unsigned i, bool v) const {
  BoolFn g(n_);
  const std::uint32_t bit = std::uint32_t{1} << i;
  for (std::uint32_t x = 0; x < table_size(); ++x) {
    const std::uint32_t y = v ? (x | bit) : (x & ~bit);
    g.tt_[x] = tt_[y];
  }
  return g;
}

bool BoolFn::depends_on(unsigned i) const {
  const std::uint32_t bit = std::uint32_t{1} << i;
  for (std::uint32_t x = 0; x < table_size(); ++x)
    if ((x & bit) == 0 && tt_[x] != tt_[x | bit]) return true;
  return false;
}

std::vector<std::int64_t> multilinear_coeffs(const BoolFn& f) {
  const std::uint32_t size = f.table_size();
  std::vector<std::int64_t> c(size);
  for (std::uint32_t x = 0; x < size; ++x) c[x] = f(x) ? 1 : 0;
  // In-place subset Moebius transform: alpha_S = sum_{T subseteq S}
  // (-1)^{|S\T|} f(1_T). Uniqueness of the representation is Fact 2.1.
  for (unsigned i = 0; i < f.arity(); ++i) {
    const std::uint32_t bit = std::uint32_t{1} << i;
    for (std::uint32_t mask = 0; mask < size; ++mask)
      if (mask & bit) c[mask] -= c[mask ^ bit];
  }
  return c;
}

unsigned degree(const BoolFn& f) {
  const auto c = multilinear_coeffs(f);
  unsigned deg = 0;
  for (std::uint32_t mask = 0; mask < c.size(); ++mask)
    if (c[mask] != 0)
      deg = std::max(deg, static_cast<unsigned>(std::popcount(mask)));
  return deg;
}

std::int64_t eval_multilinear(const std::vector<std::int64_t>& coeffs,
                              std::uint32_t x) {
  std::int64_t v = 0;
  for (std::uint32_t mask = 0; mask < coeffs.size(); ++mask)
    if (coeffs[mask] != 0 && (mask & x) == mask) v += coeffs[mask];
  return v;
}

}  // namespace parbounds
