#include "boolfn/simd_kernels.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define PARBOUNDS_SIMD_X86 1
#include <immintrin.h>
#else
#define PARBOUNDS_SIMD_X86 0
#endif

namespace parbounds::simd {

namespace {

// ===== portable reference kernels ===========================================
// These are the semantics. The wide variants below must be bit-identical
// — every lane operation is exact integer work and every accumulator
// combines associatively, so reordering partial sums cannot change a
// result. The dispatch-equivalence oracle (bench_hotpath) and the
// intra-label gtest hold each tier to this.

void p_not(std::uint64_t* dst, const std::uint64_t* src, std::size_t lo,
           std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) dst[i] = ~src[i];
}

void p_and(std::uint64_t* dst, const std::uint64_t* a,
           const std::uint64_t* b, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) dst[i] = a[i] & b[i];
}

void p_or(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
          std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) dst[i] = a[i] | b[i];
}

void p_xor(std::uint64_t* dst, const std::uint64_t* a,
           const std::uint64_t* b, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) dst[i] = a[i] ^ b[i];
}

void p_fix_low(std::uint64_t* dst, const std::uint64_t* src, std::size_t lo,
               std::size_t hi, unsigned shift, std::uint64_t hi_mask,
               bool value) {
  if (value) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint64_t t = src[i] & hi_mask;
      dst[i] = t | (t >> shift);
    }
  } else {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint64_t t = src[i] & ~hi_mask;
      dst[i] = t | (t << shift);
    }
  }
}

std::uint64_t p_popcount(const std::uint64_t* w, std::size_t lo,
                         std::size_t hi) {
  std::uint64_t c = 0;
  for (std::size_t i = lo; i < hi; ++i)
    c += static_cast<std::uint64_t>(std::popcount(w[i]));
  return c;
}

std::int64_t p_signed_sum(const std::uint64_t* w, std::size_t lo,
                          std::size_t hi, std::uint64_t keep,
                          std::size_t skip_blk) {
  std::int64_t s = 0;
  for (std::size_t wi = lo; wi < hi; ++wi) {
    if ((wi & skip_blk) != 0) continue;
    const std::uint64_t bits = w[wi] & keep;
    if (bits == 0) continue;
    const std::int64_t d = std::popcount(bits & ~kOddParity) -
                           std::popcount(bits & kOddParity);
    s += (std::popcount(wi) & 1u) ? -d : d;
  }
  return s;
}

void p_gf2_inword(std::uint64_t* w, std::size_t lo, std::size_t hi,
                  unsigned shift, std::uint64_t mask) {
  for (std::size_t i = lo; i < hi; ++i) w[i] ^= (w[i] << shift) & mask;
}

void p_gf2_cross(std::uint64_t* w, std::size_t lo, std::size_t hi,
                 std::size_t blk) {
  for (std::size_t i = lo; i < hi; ++i)
    if ((i & blk) != 0) w[i] ^= w[i ^ blk];
}

void p_moebius_level(std::int32_t* c, std::uint64_t lo, std::uint64_t hi,
                     std::uint32_t h) {
  for (std::uint64_t k = lo; k < hi; ++k) {
    const auto j = static_cast<std::uint32_t>(k % h);
    const auto base = static_cast<std::uint32_t>(k / h) * 2 * h;
    c[base + h + j] -= c[base + j];
  }
}

void p_scatter01(std::int32_t* c, const std::uint64_t* w, std::size_t wlo,
                 std::size_t whi) {
  for (std::size_t wi = wlo; wi < whi; ++wi) {
    const std::uint64_t bits = w[wi];
    std::int32_t* out = c + (wi << 6);
    for (unsigned j = 0; j < 64; ++j)
      out[j] = static_cast<std::int32_t>((bits >> j) & 1u);
  }
}

void p_slice_accum(std::int32_t* g, const std::uint64_t* slice,
                   std::size_t words, std::int32_t sgn) {
  for (std::size_t wi = 0; wi < words; ++wi) {
    std::uint64_t bits = slice[wi];
    while (bits != 0) {
      const unsigned j = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      g[(wi << 6) | j] += sgn;
    }
  }
}

unsigned p_max_deg_scan(const std::int32_t* c, std::uint32_t lo,
                        std::uint32_t hi) {
  unsigned b = 0;
  for (std::uint32_t m = lo; m < hi; ++m)
    if (c[m] != 0)
      b = std::max(b, static_cast<unsigned>(std::popcount(m)));
  return b;
}

#if PARBOUNDS_SIMD_X86

// ===== AVX2 kernels =========================================================
// Compiled with per-function target attributes; only ever called behind
// the cpuid probe in runtime::active_simd_level().

#define PB_TGT_AVX2 __attribute__((target("avx2")))

PB_TGT_AVX2 void v2_not(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t lo, std::size_t hi) {
  std::size_t i = lo;
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (; i + 4 <= hi; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(v, ones));
  }
  for (; i < hi; ++i) dst[i] = ~src[i];
}

PB_TGT_AVX2 void v2_and(std::uint64_t* dst, const std::uint64_t* a,
                        const std::uint64_t* b, std::size_t lo,
                        std::size_t hi) {
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4)
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_and_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
  for (; i < hi; ++i) dst[i] = a[i] & b[i];
}

PB_TGT_AVX2 void v2_or(std::uint64_t* dst, const std::uint64_t* a,
                       const std::uint64_t* b, std::size_t lo,
                       std::size_t hi) {
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4)
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_or_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
  for (; i < hi; ++i) dst[i] = a[i] | b[i];
}

PB_TGT_AVX2 void v2_xor(std::uint64_t* dst, const std::uint64_t* a,
                        const std::uint64_t* b, std::size_t lo,
                        std::size_t hi) {
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4)
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
  for (; i < hi; ++i) dst[i] = a[i] ^ b[i];
}

PB_TGT_AVX2 void v2_fix_low(std::uint64_t* dst, const std::uint64_t* src,
                            std::size_t lo, std::size_t hi, unsigned shift,
                            std::uint64_t hi_mask, bool value) {
  const __m128i cnt = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m256i vmask =
      _mm256_set1_epi64x(static_cast<long long>(hi_mask));
  std::size_t i = lo;
  if (value) {
    for (; i + 4 <= hi; i += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      const __m256i t = _mm256_and_si256(v, vmask);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_or_si256(t, _mm256_srl_epi64(t, cnt)));
    }
  } else {
    for (; i + 4 <= hi; i += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      const __m256i t = _mm256_andnot_si256(vmask, v);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_or_si256(t, _mm256_sll_epi64(t, cnt)));
    }
  }
  p_fix_low(dst, src, i, hi, shift, hi_mask, value);
}

// Classic pshufb nibble-LUT popcount; _mm256_sad_epu8 folds the byte
// counts into exact per-64-bit-lane sums, accumulated in int64 lanes.
PB_TGT_AVX2 std::uint64_t v2_popcount(const std::uint64_t* w, std::size_t lo,
                                      std::size_t hi) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low4 = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    const __m256i nlo = _mm256_and_si256(v, low4);
    const __m256i nhi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low4);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, nlo),
                                        _mm256_shuffle_epi8(lut, nhi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
  }
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                  _mm256_extracti128_si256(acc, 1));
  std::uint64_t total =
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
      static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
  for (; i < hi; ++i)
    total += static_cast<std::uint64_t>(std::popcount(w[i]));
  return total;
}

PB_TGT_AVX2 void v2_gf2_inword(std::uint64_t* w, std::size_t lo,
                               std::size_t hi, unsigned shift,
                               std::uint64_t mask) {
  const __m128i cnt = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(w + i),
        _mm256_xor_si256(
            v, _mm256_and_si256(_mm256_sll_epi64(v, cnt), vmask)));
  }
  for (; i < hi; ++i) w[i] ^= (w[i] << shift) & mask;
}

PB_TGT_AVX2 void v2_gf2_cross(std::uint64_t* w, std::size_t lo,
                              std::size_t hi, std::size_t blk) {
  std::size_t i = lo;
  while (i < hi) {
    if ((i & blk) == 0) {
      // Jump to the next index with the blk bit set.
      i = (i | blk) & ~(blk - 1);
      continue;
    }
    // The blk bit stays set through the end of this aligned run.
    const std::size_t run_end =
        std::min<std::size_t>(hi, (i - (i & (blk - 1))) + blk);
    std::size_t j = i;
    for (; j + 4 <= run_end; j += 4)
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(w + j),
          _mm256_xor_si256(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + j)),
              _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(w + j - blk))));
    for (; j < run_end; ++j) w[j] ^= w[j - blk];
    i = run_end;
  }
}

PB_TGT_AVX2 void v2_moebius_level(std::int32_t* c, std::uint64_t lo,
                                  std::uint64_t hi, std::uint32_t h) {
  if (h < 8) {  // strided updates narrower than a vector: scalar level
    p_moebius_level(c, lo, hi, h);
    return;
  }
  std::uint64_t k = lo;
  while (k < hi) {
    const auto j = static_cast<std::uint32_t>(k % h);
    const auto base = static_cast<std::uint32_t>(k / h) * 2 * h;
    const std::uint64_t run = std::min<std::uint64_t>(hi - k, h - j);
    std::int32_t* dst = c + base + h + j;
    const std::int32_t* src = c + base + j;
    std::size_t x = 0;
    for (; x + 8 <= run; x += 8)
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(dst + x),
          _mm256_sub_epi32(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + x)),
              _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(src + x))));
    for (; x < run; ++x) dst[x] -= src[x];
    k += run;
  }
}

PB_TGT_AVX2 void v2_scatter01(std::int32_t* c, const std::uint64_t* w,
                              std::size_t wlo, std::size_t whi) {
  const __m256i shifts = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i one = _mm256_set1_epi32(1);
  for (std::size_t wi = wlo; wi < whi; ++wi) {
    const std::uint64_t bits = w[wi];
    std::int32_t* out = c + (wi << 6);
    for (unsigned b = 0; b < 64; b += 8) {
      const __m256i chunk =
          _mm256_set1_epi32(static_cast<int>((bits >> b) & 0xffu));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + b),
          _mm256_and_si256(_mm256_srlv_epi32(chunk, shifts), one));
    }
  }
}

PB_TGT_AVX2 void v2_slice_accum(std::int32_t* g, const std::uint64_t* slice,
                                std::size_t words, std::int32_t sgn) {
  const __m256i shifts = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i one = _mm256_set1_epi32(1);
  for (std::size_t wi = 0; wi < words; ++wi) {
    const std::uint64_t bits = slice[wi];
    if (bits == 0) continue;
    std::int32_t* out = g + (wi << 6);
    for (unsigned b = 0; b < 64; b += 8) {
      const std::uint32_t ch =
          static_cast<std::uint32_t>((bits >> b) & 0xffu);
      if (ch == 0) continue;
      const __m256i m = _mm256_and_si256(
          _mm256_srlv_epi32(_mm256_set1_epi32(static_cast<int>(ch)),
                            shifts),
          one);
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + b));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + b),
                          sgn > 0 ? _mm256_add_epi32(v, m)
                                  : _mm256_sub_epi32(v, m));
    }
  }
}

// ===== AVX-512 kernels ======================================================
// Foundation + BW (64-lane masks) + VPOPCNTDQ (per-lane popcounts) —
// exactly the features runtime::probe_max_level() requires for the tier.

#define PB_TGT_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512vpopcntdq")))

// gcc's avx512 headers implement the unmasked intrinsics via masked
// builtins whose passthrough operand is the self-initialized
// `__m512i __Y = __Y` undefined-value idiom; every inline site then
// trips -W(maybe-)uninitialized (gcc PR105593). The values are never
// observed — all lanes are overwritten — so silence the two
// diagnostics for the AVX-512 block only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

// Store-and-sum reductions: _mm512_reduce_* expand through
// _mm256_undefined_si256 in the gcc headers, which trips
// -Wuninitialized under -Werror; a store plus scalar fold costs
// nothing once per kernel call and is warning-clean.
PB_TGT_AVX512 std::int64_t v5_hsum_epi64(__m512i v) {
  std::int64_t tmp[8];
  _mm512_storeu_si512(tmp, v);
  std::int64_t s = 0;
  for (const std::int64_t x : tmp) s += x;
  return s;
}

PB_TGT_AVX512 std::uint32_t v5_hmax_epu32(__m512i v) {
  std::uint32_t tmp[16];
  _mm512_storeu_si512(tmp, v);
  std::uint32_t m = 0;
  for (const std::uint32_t x : tmp) m = std::max(m, x);
  return m;
}

PB_TGT_AVX512 void v5_not(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t lo, std::size_t hi) {
  std::size_t i = lo;
  const __m512i ones = _mm512_set1_epi64(-1);
  for (; i + 8 <= hi; i += 8)
    _mm512_storeu_si512(dst + i,
                        _mm512_xor_si512(_mm512_loadu_si512(src + i), ones));
  for (; i < hi; ++i) dst[i] = ~src[i];
}

PB_TGT_AVX512 void v5_and(std::uint64_t* dst, const std::uint64_t* a,
                          const std::uint64_t* b, std::size_t lo,
                          std::size_t hi) {
  std::size_t i = lo;
  for (; i + 8 <= hi; i += 8)
    _mm512_storeu_si512(dst + i,
                        _mm512_and_si512(_mm512_loadu_si512(a + i),
                                         _mm512_loadu_si512(b + i)));
  for (; i < hi; ++i) dst[i] = a[i] & b[i];
}

PB_TGT_AVX512 void v5_or(std::uint64_t* dst, const std::uint64_t* a,
                         const std::uint64_t* b, std::size_t lo,
                         std::size_t hi) {
  std::size_t i = lo;
  for (; i + 8 <= hi; i += 8)
    _mm512_storeu_si512(dst + i,
                        _mm512_or_si512(_mm512_loadu_si512(a + i),
                                        _mm512_loadu_si512(b + i)));
  for (; i < hi; ++i) dst[i] = a[i] | b[i];
}

PB_TGT_AVX512 void v5_xor(std::uint64_t* dst, const std::uint64_t* a,
                          const std::uint64_t* b, std::size_t lo,
                          std::size_t hi) {
  std::size_t i = lo;
  for (; i + 8 <= hi; i += 8)
    _mm512_storeu_si512(dst + i,
                        _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                         _mm512_loadu_si512(b + i)));
  for (; i < hi; ++i) dst[i] = a[i] ^ b[i];
}

PB_TGT_AVX512 void v5_fix_low(std::uint64_t* dst, const std::uint64_t* src,
                              std::size_t lo, std::size_t hi, unsigned shift,
                              std::uint64_t hi_mask, bool value) {
  const __m128i cnt = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m512i vmask =
      _mm512_set1_epi64(static_cast<long long>(hi_mask));
  std::size_t i = lo;
  if (value) {
    for (; i + 8 <= hi; i += 8) {
      const __m512i t =
          _mm512_and_si512(_mm512_loadu_si512(src + i), vmask);
      _mm512_storeu_si512(dst + i,
                          _mm512_or_si512(t, _mm512_srl_epi64(t, cnt)));
    }
  } else {
    for (; i + 8 <= hi; i += 8) {
      const __m512i t =
          _mm512_andnot_si512(vmask, _mm512_loadu_si512(src + i));
      _mm512_storeu_si512(dst + i,
                          _mm512_or_si512(t, _mm512_sll_epi64(t, cnt)));
    }
  }
  p_fix_low(dst, src, i, hi, shift, hi_mask, value);
}

PB_TGT_AVX512 std::uint64_t v5_popcount(const std::uint64_t* w,
                                        std::size_t lo, std::size_t hi) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = lo;
  for (; i + 8 <= hi; i += 8)
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_loadu_si512(w + i)));
  std::uint64_t total =
      static_cast<std::uint64_t>(v5_hsum_epi64(acc));
  for (; i < hi; ++i)
    total += static_cast<std::uint64_t>(std::popcount(w[i]));
  return total;
}

PB_TGT_AVX512 std::int64_t v5_signed_sum(const std::uint64_t* w,
                                         std::size_t lo, std::size_t hi,
                                         std::uint64_t keep,
                                         std::size_t skip_blk) {
  std::int64_t s = 0;
  std::size_t i = lo;
  // Scalar until 8-aligned so popcount(i + k) = popcount(i) +
  // popcount(k) holds inside every 8-word group.
  for (; i < hi && (i & 7u) != 0; ++i)
    s += p_signed_sum(w, i, i + 1, keep, skip_blk);
  // Lane liveness for sub-group skip strides (skip_blk in {1,2,4}):
  // lane k is live iff (k & skip_blk) == 0. For skip_blk >= 8 whole
  // groups are in or out together (i is 8-aligned).
  __mmask8 live_small = 0xff;
  if (skip_blk != 0 && skip_blk < 8) {
    live_small = 0;
    for (unsigned k = 0; k < 8; ++k)
      if ((k & skip_blk) == 0) live_small |= static_cast<__mmask8>(1u << k);
  }
  // Parity of k for k = 0..7: lanes {1, 2, 4, 7} are odd.
  constexpr unsigned kOddLanes = 0x96;
  const __m512i vkeep = _mm512_set1_epi64(static_cast<long long>(keep));
  const __m512i vodd =
      _mm512_set1_epi64(static_cast<long long>(kOddParity));
  __m512i acc_pos = _mm512_setzero_si512();
  __m512i acc_neg = _mm512_setzero_si512();
  for (; i + 8 <= hi; i += 8) {
    if (skip_blk >= 8 && (i & skip_blk) != 0) continue;
    const unsigned base_odd = static_cast<unsigned>(std::popcount(i)) & 1u;
    const __mmask8 mneg = static_cast<__mmask8>(
        (base_odd ? ~kOddLanes : kOddLanes) & live_small);
    const __mmask8 mpos = static_cast<__mmask8>(
        (base_odd ? kOddLanes : ~kOddLanes) & live_small);
    const __m512i bits =
        _mm512_and_si512(_mm512_loadu_si512(w + i), vkeep);
    const __m512i d = _mm512_sub_epi64(
        _mm512_popcnt_epi64(_mm512_andnot_si512(vodd, bits)),
        _mm512_popcnt_epi64(_mm512_and_si512(bits, vodd)));
    acc_pos = _mm512_mask_add_epi64(acc_pos, mpos, acc_pos, d);
    acc_neg = _mm512_mask_add_epi64(acc_neg, mneg, acc_neg, d);
  }
  s += v5_hsum_epi64(acc_pos) - v5_hsum_epi64(acc_neg);
  for (; i < hi; ++i) s += p_signed_sum(w, i, i + 1, keep, skip_blk);
  return s;
}

PB_TGT_AVX512 void v5_gf2_inword(std::uint64_t* w, std::size_t lo,
                                 std::size_t hi, unsigned shift,
                                 std::uint64_t mask) {
  const __m128i cnt = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m512i vmask = _mm512_set1_epi64(static_cast<long long>(mask));
  std::size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m512i v = _mm512_loadu_si512(w + i);
    _mm512_storeu_si512(
        w + i,
        _mm512_xor_si512(
            v, _mm512_and_si512(_mm512_sll_epi64(v, cnt), vmask)));
  }
  for (; i < hi; ++i) w[i] ^= (w[i] << shift) & mask;
}

PB_TGT_AVX512 void v5_gf2_cross(std::uint64_t* w, std::size_t lo,
                                std::size_t hi, std::size_t blk) {
  std::size_t i = lo;
  while (i < hi) {
    if ((i & blk) == 0) {
      i = (i | blk) & ~(blk - 1);
      continue;
    }
    const std::size_t run_end =
        std::min<std::size_t>(hi, (i - (i & (blk - 1))) + blk);
    std::size_t j = i;
    for (; j + 8 <= run_end; j += 8)
      _mm512_storeu_si512(
          w + j, _mm512_xor_si512(_mm512_loadu_si512(w + j),
                                  _mm512_loadu_si512(w + j - blk)));
    for (; j < run_end; ++j) w[j] ^= w[j - blk];
    i = run_end;
  }
}

PB_TGT_AVX512 void v5_moebius_level(std::int32_t* c, std::uint64_t lo,
                                    std::uint64_t hi, std::uint32_t h) {
  if (h < 16) {
    p_moebius_level(c, lo, hi, h);
    return;
  }
  std::uint64_t k = lo;
  while (k < hi) {
    const auto j = static_cast<std::uint32_t>(k % h);
    const auto base = static_cast<std::uint32_t>(k / h) * 2 * h;
    const std::uint64_t run = std::min<std::uint64_t>(hi - k, h - j);
    std::int32_t* dst = c + base + h + j;
    const std::int32_t* src = c + base + j;
    std::size_t x = 0;
    for (; x + 16 <= run; x += 16)
      _mm512_storeu_si512(dst + x,
                          _mm512_sub_epi32(_mm512_loadu_si512(dst + x),
                                           _mm512_loadu_si512(src + x)));
    for (; x < run; ++x) dst[x] -= src[x];
    k += run;
  }
}

PB_TGT_AVX512 void v5_scatter01(std::int32_t* c, const std::uint64_t* w,
                                std::size_t wlo, std::size_t whi) {
  const __m512i one = _mm512_set1_epi32(1);
  for (std::size_t wi = wlo; wi < whi; ++wi) {
    const std::uint64_t bits = w[wi];
    std::int32_t* out = c + (wi << 6);
    for (unsigned b = 0; b < 64; b += 16)
      _mm512_storeu_si512(
          out + b,
          _mm512_maskz_mov_epi32(static_cast<__mmask16>(bits >> b), one));
  }
}

PB_TGT_AVX512 void v5_slice_accum(std::int32_t* g,
                                  const std::uint64_t* slice,
                                  std::size_t words, std::int32_t sgn) {
  const __m512i one = _mm512_set1_epi32(1);
  for (std::size_t wi = 0; wi < words; ++wi) {
    const std::uint64_t bits = slice[wi];
    if (bits == 0) continue;
    std::int32_t* out = g + (wi << 6);
    for (unsigned b = 0; b < 64; b += 16) {
      const auto m = static_cast<__mmask16>(bits >> b);
      if (m == 0) continue;
      const __m512i v = _mm512_loadu_si512(out + b);
      _mm512_storeu_si512(out + b,
                          sgn > 0
                              ? _mm512_mask_add_epi32(v, m, v, one)
                              : _mm512_mask_sub_epi32(v, m, v, one));
    }
  }
}

PB_TGT_AVX512 unsigned v5_max_deg_scan(const std::int32_t* c,
                                       std::uint32_t lo, std::uint32_t hi) {
  unsigned best = 0;
  std::uint32_t m = lo;
  for (; m < hi && (m & 15u) != 0; ++m)
    if (c[m] != 0)
      best = std::max(best, static_cast<unsigned>(std::popcount(m)));
  const __m512i lanes = _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7,
                                         6, 5, 4, 3, 2, 1, 0);
  __m512i vbest = _mm512_setzero_si512();
  for (; m + 16 <= hi; m += 16) {
    const __m512i vc = _mm512_loadu_si512(c + m);
    const __mmask16 nz = _mm512_test_epi32_mask(vc, vc);
    if (nz == 0) continue;
    const __m512i idx =
        _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(m)), lanes);
    vbest = _mm512_mask_max_epu32(vbest, nz, vbest,
                                  _mm512_popcnt_epi32(idx));
  }
  best = std::max(best, static_cast<unsigned>(v5_hmax_epu32(vbest)));
  for (; m < hi; ++m)
    if (c[m] != 0)
      best = std::max(best, static_cast<unsigned>(std::popcount(m)));
  return best;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // PARBOUNDS_SIMD_X86

constexpr KernelDispatch kPortableTable = {
    "portable",       p_not,         p_and,         p_or,
    p_xor,            p_fix_low,     p_popcount,    p_signed_sum,
    p_gf2_inword,     p_gf2_cross,   p_moebius_level, p_scatter01,
    p_slice_accum,    p_max_deg_scan,
};

#if PARBOUNDS_SIMD_X86
// The AVX2 ISA has no mask registers or per-lane popcount, so the
// signed-sum and degree-scan entries fall back to the scalar reference;
// every bulk word loop is 256-bit.
constexpr KernelDispatch kAvx2Table = {
    "avx2",           v2_not,        v2_and,        v2_or,
    v2_xor,           v2_fix_low,    v2_popcount,   p_signed_sum,
    v2_gf2_inword,    v2_gf2_cross,  v2_moebius_level, v2_scatter01,
    v2_slice_accum,   p_max_deg_scan,
};

constexpr KernelDispatch kAvx512Table = {
    "avx512",         v5_not,        v5_and,        v5_or,
    v5_xor,           v5_fix_low,    v5_popcount,   v5_signed_sum,
    v5_gf2_inword,    v5_gf2_cross,  v5_moebius_level, v5_scatter01,
    v5_slice_accum,   v5_max_deg_scan,
};
#endif

}  // namespace

const KernelDispatch& kernels_for(runtime::SimdLevel level) {
#if PARBOUNDS_SIMD_X86
  switch (level) {
    case runtime::SimdLevel::kAvx512:
      return kAvx512Table;
    case runtime::SimdLevel::kAvx2:
      return kAvx2Table;
    case runtime::SimdLevel::kPortable:
      break;
  }
#else
  (void)level;
#endif
  return kPortableTable;
}

}  // namespace parbounds::simd
