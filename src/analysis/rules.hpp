#pragma once
// parlint rule set: model-contract checks over ExecutionTraces.
//
// The paper's lower bounds (and the Claim 2.1 cost mappings) are only
// meaningful for executions that obey the Section 2 model contracts.
// The engines enforce those contracts at commit time with
// ModelViolation throws, but a trace that arrives from anywhere else —
// a CSV file, another simulator, a hand-built golden test — carries no
// such guarantee. Each Rule re-derives one contract from the recorded
// trace and reports violations as Findings, so the trace itself can be
// certified or rejected independently of the engine that produced it.
//
// Built-in rules (ids are stable; see docs/ANALYSIS.md):
//   race.rw-mix      cell both read and written in one phase (QSM/GSM
//                    queue rule; needs detail-mode events)
//   race.exclusive   contention above 1 on a run claiming EREW
//                    discipline (cfg.erew)
//   audit.kappa      recorded kappa / m_rw / read+write totals disagree
//                    with a re-derivation from the event multiset
//   audit.cost       charged PhaseTrace::cost differs from the cost
//                    recomputed from PhaseStats under the model policy
//                    (max(m_op, g*m_rw, kappa) family, BSP w+g*h+L
//                    accounting, GSM big-steps)
//   rounds.budget    phase exceeds the Section 2.3 round budget for
//                    (n, p) — only when cfg.n and cfg.p are set
//   mapping.precondition  trace-level Claim 2.1/2.2 preconditions
//                    (g >= 1, d >= 1, BSP L >= g)

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/finding.hpp"
#include "core/cost.hpp"
#include "core/trace.hpp"

namespace parbounds::analysis {

struct LintConfig {
  /// Cost policy to audit against. Unset = derive from the trace kind
  /// (Qsm -> CostModel::Qsm and so on). Traces recorded under the
  /// auxiliary policies (QsmCrFree, CrcwLike, Erew) share Kind::Qsm, so
  /// they must set this explicitly for a faithful cost audit.
  std::optional<CostModel> model;

  /// Enforce exclusive access (EREW discipline): any per-cell
  /// contention above 1 becomes a race.exclusive error. On plain
  /// QSM-family runs queued concurrent access is legal and unflagged.
  bool erew = false;

  /// Input size / processor count for the Section 2.3 round-structure
  /// audit. Both must be nonzero for rounds.budget to run.
  std::uint64_t n = 0;
  std::uint64_t p = 0;
  std::uint64_t slack = 4;  ///< the hidden O() constant for budgets

  /// GSM big-step parameters for cost/round audits of Kind::Gsm traces
  /// (the trace itself does not carry them).
  std::uint64_t alpha = 1;
  std::uint64_t beta = 1;
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* id() const = 0;

  /// Examine t.phases[index]. Called once per phase, in order — either
  /// post-mortem by Linter::run or inline by InlineLinter.
  virtual void check_phase(const ExecutionTrace& t, std::size_t index,
                           const LintConfig& cfg, Report& out) const = 0;

  /// Whole-trace checks (preconditions, cross-phase structure).
  virtual void check_trace(const ExecutionTrace& t, const LintConfig& cfg,
                           Report& out) const;
};

/// Queue rule + EREW exclusivity, from the detail-mode event multiset.
class RaceRule final : public Rule {
 public:
  const char* id() const override { return "race"; }
  void check_phase(const ExecutionTrace& t, std::size_t index,
                   const LintConfig& cfg, Report& out) const override;
};

/// kappa / m_rw / totals re-derivation from the event multiset.
class KappaAuditRule final : public Rule {
 public:
  const char* id() const override { return "audit.kappa"; }
  void check_phase(const ExecutionTrace& t, std::size_t index,
                   const LintConfig& cfg, Report& out) const override;
};

/// Charged cost vs. recomputed cost.
class CostAuditRule final : public Rule {
 public:
  const char* id() const override { return "audit.cost"; }
  void check_phase(const ExecutionTrace& t, std::size_t index,
                   const LintConfig& cfg, Report& out) const override;
};

/// Section 2.3 round budgets (generalizes core/rounds.*).
class RoundBudgetRule final : public Rule {
 public:
  const char* id() const override { return "rounds.budget"; }
  void check_phase(const ExecutionTrace& t, std::size_t index,
                   const LintConfig& cfg, Report& out) const override;
};

/// Claim 2.1 / 2.2 mapping preconditions (trace-level).
class MappingPreconditionRule final : public Rule {
 public:
  const char* id() const override { return "mapping.precondition"; }
  void check_phase(const ExecutionTrace& t, std::size_t index,
                   const LintConfig& cfg, Report& out) const override;
  void check_trace(const ExecutionTrace& t, const LintConfig& cfg,
                   Report& out) const override;
};

/// The full built-in rule set, in deterministic order.
std::vector<std::unique_ptr<Rule>> default_rules();

/// The cost model the audits assume for `t` under `cfg` (explicit
/// override, else derived from the trace kind; Bsp/Gsm return nullopt —
/// they are audited with their own formulas, not a CostModel).
std::optional<CostModel> effective_model(const ExecutionTrace& t,
                                         const LintConfig& cfg);

}  // namespace parbounds::analysis
