#include "analysis/parlint.hpp"

#include <stdexcept>

namespace parbounds::analysis {

Linter::Linter(LintConfig cfg) : cfg_(cfg), rules_(default_rules()) {}

Linter::Linter(Empty, LintConfig cfg) : cfg_(cfg) {}

void Linter::add_rule(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
}

Report Linter::run(const ExecutionTrace& t) const {
  Report out;
  for (std::size_t i = 0; i < t.phases.size(); ++i) run_phase(t, i, out);
  run_trace_checks(t, out);
  return out;
}

void Linter::run_phase(const ExecutionTrace& t, std::size_t index,
                       Report& out) const {
  for (const auto& rule : rules_) rule->check_phase(t, index, cfg_, out);
}

void Linter::run_trace_checks(const ExecutionTrace& t, Report& out) const {
  for (const auto& rule : rules_) rule->check_trace(t, cfg_, out);
}

InlineLinter::InlineLinter(LintConfig cfg, bool throw_on_error)
    : linter_(cfg), throw_on_error_(throw_on_error) {}

void InlineLinter::on_phase_committed(const ExecutionTrace& t,
                                      std::size_t index) {
  const std::size_t before = report_.findings.size();
  linter_.run_phase(t, index, report_);
  if (!throw_on_error_) return;
  for (std::size_t i = before; i < report_.findings.size(); ++i) {
    const Finding& f = report_.findings[i];
    if (f.severity == Severity::Error)
      throw std::runtime_error("parlint[" + f.rule + "] phase " +
                               std::to_string(f.phase) + ": " + f.message);
  }
}

}  // namespace parbounds::analysis
