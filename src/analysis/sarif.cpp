#include "analysis/sarif.hpp"

namespace parbounds::analysis {

namespace {

constexpr const char* kSchema =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json";

// SARIF levels happen to share parlint's severity names.
const char* level_name(Severity s) { return severity_name(s); }

}  // namespace

std::string to_sarif(const SarifTool& tool,
                     const std::vector<Finding>& findings,
                     const std::string& default_uri) {
  // The driver's rule table: the caller's registry first, then any
  // rule id seen in the findings but missing from it, in finding
  // order — so ruleIndex below is always valid.
  std::vector<SarifRuleDesc> rules = tool.rules;
  auto rule_index = [&rules](const std::string& id) {
    for (std::size_t i = 0; i < rules.size(); ++i)
      if (rules[i].id == id) return i;
    rules.push_back({id, ""});
    return rules.size() - 1;
  };
  std::vector<std::size_t> indices;
  indices.reserve(findings.size());
  for (const Finding& f : findings) indices.push_back(rule_index(f.rule));

  std::string out = "{\"$schema\":";
  append_json_string(out, kSchema);
  out += ",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":";
  append_json_string(out, tool.name);
  out += ",\"version\":";
  append_json_string(out, tool.version);
  if (!tool.information_uri.empty()) {
    out += ",\"informationUri\":";
    append_json_string(out, tool.information_uri);
  }
  out += ",\"rules\":[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"id\":";
    append_json_string(out, rules[i].id);
    if (!rules[i].summary.empty()) {
      out += ",\"shortDescription\":{\"text\":";
      append_json_string(out, rules[i].summary);
      out += '}';
    }
    out += '}';
  }
  out += "]}},\"results\":[";

  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out += ',';
    out += "{\"ruleId\":";
    append_json_string(out, f.rule);
    out += ",\"ruleIndex\":" + std::to_string(indices[i]);
    out += ",\"level\":";
    append_json_string(out, level_name(f.severity));
    out += ",\"message\":{\"text\":";
    append_json_string(out, f.message);
    out += '}';

    const std::string& uri = f.file.empty() ? default_uri : f.file;
    if (!uri.empty()) {
      out += ",\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
             "{\"uri\":";
      append_json_string(out, uri);
      out += '}';
      if (f.line > 0)
        out += ",\"region\":{\"startLine\":" + std::to_string(f.line) + '}';
      out += "}}]";
    }

    // Trace-level context rides in the property bag.
    if (f.phase != Finding::kNoPhase || !f.cells.empty()) {
      out += ",\"properties\":{";
      bool first = true;
      if (f.phase != Finding::kNoPhase) {
        out += "\"phase\":" + std::to_string(f.phase);
        first = false;
      }
      if (!f.cells.empty()) {
        if (!first) out += ',';
        out += "\"cells\":[";
        for (std::size_t c = 0; c < f.cells.size(); ++c) {
          if (c != 0) out += ',';
          out += std::to_string(f.cells[c]);
        }
        out += ']';
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}]}";
  return out;
}

}  // namespace parbounds::analysis
