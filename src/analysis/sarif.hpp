#pragma once
// SARIF 2.1.0 export for analysis findings, shared by parlint_cli and
// detlint_cli. One run, one driver, one result per Finding — enough of
// the standard for GitHub code scanning and other SARIF consumers,
// with the repo's deterministic-output discipline: the same findings
// always serialize to the same bytes.
//
// Location mapping: source-level findings (detlint) carry file/line
// and become physicalLocations directly; trace-level findings
// (parlint) have no source file, so the caller supplies a default
// artifact URI (the trace path) and phase/cells travel in the result's
// property bag.

#include <string>
#include <vector>

#include "analysis/finding.hpp"

namespace parbounds::analysis {

struct SarifRuleDesc {
  std::string id;
  std::string summary;  ///< becomes shortDescription.text (may be empty)
};

struct SarifTool {
  std::string name;
  std::string version = "1.0.0";
  std::string information_uri;
  std::vector<SarifRuleDesc> rules;  ///< registry; extended on demand
};

/// Render `findings` as a complete SARIF 2.1.0 log (single run).
/// Findings whose `file` is empty use `default_uri` as their artifact
/// location; rule ids absent from `tool.rules` are appended to the
/// driver's rule table automatically so every result has a ruleIndex.
std::string to_sarif(const SarifTool& tool,
                     const std::vector<Finding>& findings,
                     const std::string& default_uri);

}  // namespace parbounds::analysis
