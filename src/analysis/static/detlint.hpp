#pragma once
// detlint: source-level determinism lint for the parbounds tree.
//
// Every number this reproduction reports rests on source discipline
// the engines cannot check at runtime: shard boundaries must be pure
// functions of n, merges must be commutative exact-integer ops, and
// wall-clock/RNG must never leak into committed state (commit.merge_ns
// being the one documented telemetry exception — docs/PERF.md).
// parlint (analysis/parlint.hpp) certifies execution traces after the
// fact; detlint closes the gap *before* execution by scanning the
// sources themselves. The rules are lexical (analysis/static/
// source_scan.hpp), reuse parlint's Finding/Report types, and feed the
// same JSONL and SARIF exporters.
//
// Rule catalogue (stable ids; docs/ANALYSIS.md "Static tier"):
//
//   det.wall-clock     chrono clock reads outside the telemetry layer
//                      (src/obs/) and the bench harnesses
//   det.rng            nondeterministic RNG (rand/random_device/...)
//                      outside the src/util seed plumbing
//   det.hw-concurrency machine-shape reads (hardware_concurrency &c.)
//                      that could leak into shard boundaries
//   det.unordered-iter iteration over unordered_{map,set} — order is
//                      unspecified, so anything it feeds must be
//                      order-independent or sorted (annotate why)
//   det.float-accum    float/double inside commit/merge/shard
//                      functions — merged quantities must be exact
//                      integers combined commutatively
//   det.atomic-order   atomic load/store/RMW without an explicit
//                      memory_order in any scanned file
//   det.bad-suppression    malformed DETLINT(...) note
//   det.unused-suppression (warning) note that absorbed no finding
//
// Suppression syntax: `// DETLINT(rule.id): reason` on the finding's
// line or the line directly above. The reason is mandatory; unknown
// rule ids and unused notes are themselves findings, so annotations
// cannot rot silently. Grandfathered findings live in a checked-in
// baseline (.detlint-baseline) of `rule path count` lines.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/finding.hpp"
#include "analysis/static/source_scan.hpp"

namespace parbounds::analysis::det {

struct DetRule {
  std::string id;
  Severity severity;
  std::string summary;
};

/// The rule registry, in a fixed order. Ids are stable.
const std::vector<DetRule>& rule_registry();
bool known_rule(std::string_view id);

/// Run every rule over one scanned file: raw findings are collected,
/// DETLINT suppressions absorb their matches (and are marked used),
/// then bad/unused-suppression findings are appended. Output is
/// sorted by (line, rule, message) so reports are byte-deterministic.
Report lint_file(ScannedFile& f);

/// Grandfathered findings: each entry allows up to `count` findings of
/// `rule` in `path`. Parsed from `rule path count` lines; '#' starts a
/// comment.
struct Baseline {
  std::map<std::pair<std::string, std::string>, std::uint64_t> allow;
  std::vector<std::string> errors;  ///< malformed lines, with line numbers

  static Baseline parse(std::string_view text);
};

struct BaselineOutcome {
  std::size_t absorbed = 0;         ///< findings removed by the baseline
  std::vector<std::string> stale;   ///< entries whose allowance went unused
};

/// Remove up to the allowed count of findings per (rule, file) from
/// `r`, preserving order, and report unused allowances so the baseline
/// can only shrink over time.
BaselineOutcome apply_baseline(Report& r, const Baseline& b);

}  // namespace parbounds::analysis::det
