#pragma once
// detlint source scanner: a lightweight, preprocessor-aware lexical
// pass over the repository's own C++ sources (no libclang).
//
// The scanner turns a translation unit into a flat token stream that
// the detlint rules (analysis/static/detlint.hpp) pattern-match:
//
//   * comments, string/char literals (incl. raw strings) and
//     preprocessor directives are stripped — a clock name inside a
//     log message or an #include can never fire a rule;
//   * every token carries its 1-based source line;
//   * each token is attributed to its enclosing function via a
//     ctags-style heuristic (identifier before the parameter list of
//     the nearest named `{...}` block) so rules can scope to
//     commit/merge/shard paths;
//   * `// DETLINT(rule.id): reason` suppression comments are parsed
//     into Suppression records — the linter matches them against
//     findings on the same or the following line and reports both
//     malformed and unused notes.
//
// The pass is deliberately lexical: it cannot follow aliases
// (`using Clock = std::chrono::steady_clock;` is one finding at the
// alias, not one per use) or cross-file dataflow. docs/ANALYSIS.md
// documents the contract and its limits.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parbounds::analysis::det {

struct Token {
  static constexpr std::uint32_t kNoFn = ~std::uint32_t{0};

  std::string text;
  std::uint32_t line = 0;  ///< 1-based source line
  bool ident = false;      ///< identifier/keyword vs. punctuation
  std::uint32_t fn = kNoFn;  ///< index into ScannedFile::functions
};

/// One `DETLINT(rule): reason` note, parsed out of a comment.
struct Suppression {
  std::uint32_t line = 0;  ///< line the comment starts on
  std::string rule;        ///< rule id inside the parentheses
  std::string reason;      ///< text after the colon, trimmed
  bool used = false;       ///< set by the linter when it absorbs a finding
};

struct ScannedFile {
  std::string path;  ///< as reported in findings (repo-relative)
  std::vector<Token> tokens;
  std::vector<std::string> functions;  ///< names referenced by Token::fn
  std::vector<Suppression> suppressions;
};

/// Lex `text` into a ScannedFile. Never throws on malformed input —
/// an unterminated comment or literal simply ends the token stream,
/// mirroring how a compiler would already have rejected the file.
ScannedFile scan_source(std::string path, std::string_view text);

}  // namespace parbounds::analysis::det
