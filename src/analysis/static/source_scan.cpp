#include "analysis/static/source_scan.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace parbounds::analysis::det {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Keywords that can precede a '(' without naming a function. Anything
// here never becomes a function-name candidate for token attribution.
bool control_keyword(std::string_view s) {
  static constexpr std::array<std::string_view, 14> kw = {
      "if",     "for",      "while",    "switch",       "catch",
      "return", "sizeof",   "alignof",  "decltype",     "noexcept",
      "throw",  "co_await", "co_yield", "static_assert"};
  return std::find(kw.begin(), kw.end(), s) != kw.end();
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

// Parse every `DETLINT(rule): reason` note inside one comment body.
// The first marker must be the first word of the comment (NOLINT
// convention); further markers may chain after it. Prose that quotes
// the syntax mid-sentence therefore stays inert — documentation about
// detlint can never suppress anything.
void parse_notes(std::string_view comment, std::uint32_t line,
                 std::vector<Suppression>& out) {
  std::size_t at = 0;
  bool accepted = false;
  while ((at = comment.find("DETLINT(", at)) != std::string_view::npos) {
    bool marker_ok;
    if (accepted) {
      marker_ok = std::isspace(static_cast<unsigned char>(
                      comment[at - 1])) != 0;
    } else {
      marker_ok = true;
      for (std::size_t j = 0; j < at; ++j)
        if (std::isspace(static_cast<unsigned char>(comment[j])) == 0) {
          marker_ok = false;
          break;
        }
    }
    if (!marker_ok) {
      at += 8;
      continue;
    }
    const std::size_t open = at + 7;  // index of '('
    const std::size_t close = comment.find(')', open);
    if (close == std::string_view::npos) {
      // Unterminated note: record it with an empty rule so the linter
      // can flag the malformed suppression instead of dropping it.
      out.push_back({line, "", "", false});
      return;
    }
    Suppression s;
    s.line = line;
    s.rule = trim(comment.substr(open + 1, close - open - 1));
    std::size_t rest = close + 1;
    if (rest < comment.size() && comment[rest] == ':') {
      std::size_t end = comment.find("DETLINT(", rest);
      if (end == std::string_view::npos) end = comment.size();
      s.reason = trim(comment.substr(rest + 1, end - rest - 1));
    }
    out.push_back(std::move(s));
    accepted = true;
    at = close + 1;
  }
}

// String-literal prefixes; an identifier in this set that is
// immediately followed by '"' belongs to the literal, not the code.
bool literal_prefix(std::string_view s) {
  static constexpr std::array<std::string_view, 8> pre = {
      "u8", "u", "U", "L", "R", "u8R", "uR", "UR"};
  return std::find(pre.begin(), pre.end(), s) != pre.end();
}

class Lexer {
 public:
  Lexer(std::string path, std::string_view text)
      : text_(text) {
    out_.path = std::move(path);
  }

  ScannedFile run() {
    while (i_ < text_.size()) step();
    return std::move(out_);
  }

 private:
  void step() {
    const char c = text_[i_];
    if (c == '\n') {
      ++line_;
      ++i_;
      at_line_start_ = true;
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i_;
      return;
    }
    if (c == '#' && at_line_start_) {
      skip_preprocessor();
      return;
    }
    at_line_start_ = false;
    if (c == '/' && peek(1) == '/') {
      const std::uint32_t start = line_;
      std::size_t end = text_.find('\n', i_);
      if (end == std::string_view::npos) end = text_.size();
      parse_notes(text_.substr(i_ + 2, end - i_ - 2), start,
                  out_.suppressions);
      i_ = end;
      return;
    }
    if (c == '/' && peek(1) == '*') {
      skip_block_comment();
      return;
    }
    if (c == '"') {
      skip_string(/*raw=*/false);
      return;
    }
    if (c == '\'') {
      skip_char_literal();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      skip_number();
      return;
    }
    if (ident_start(c)) {
      lex_identifier();
      return;
    }
    lex_punct();
  }

  char peek(std::size_t ahead) const {
    return i_ + ahead < text_.size() ? text_[i_ + ahead] : '\0';
  }

  void skip_preprocessor() {
    // A directive runs to the first newline not escaped by '\'.
    while (i_ < text_.size()) {
      if (text_[i_] == '\n') {
        if (i_ > 0 && text_[i_ - 1] == '\\') {
          ++line_;
          ++i_;
          continue;
        }
        return;  // the newline itself is handled by step()
      }
      // Comments inside directives still carry suppression notes.
      if (text_[i_] == '/' && peek(1) == '/') {
        std::size_t end = text_.find('\n', i_);
        if (end == std::string_view::npos) end = text_.size();
        parse_notes(text_.substr(i_ + 2, end - i_ - 2), line_,
                    out_.suppressions);
        i_ = end;
        return;
      }
      ++i_;
    }
  }

  void skip_block_comment() {
    const std::uint32_t start = line_;
    const std::size_t body = i_ + 2;
    std::size_t end = text_.find("*/", body);
    if (end == std::string_view::npos) end = text_.size();
    parse_notes(text_.substr(body, end - body), start, out_.suppressions);
    for (std::size_t j = i_; j < end; ++j)
      if (text_[j] == '\n') ++line_;
    i_ = std::min(end + 2, text_.size());
  }

  void skip_string(bool raw) {
    if (raw) {
      // R"delim( ... )delim"
      const std::size_t open = text_.find('(', i_ + 1);
      if (open == std::string_view::npos) {
        i_ = text_.size();
        return;
      }
      const std::string closer =
          ")" + std::string(text_.substr(i_ + 1, open - i_ - 1)) + "\"";
      std::size_t end = text_.find(closer, open + 1);
      if (end == std::string_view::npos) end = text_.size();
      for (std::size_t j = i_; j < end && j < text_.size(); ++j)
        if (text_[j] == '\n') ++line_;
      i_ = std::min(end + closer.size(), text_.size());
      return;
    }
    ++i_;  // opening quote
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (c == '\\') {
        i_ += 2;
        continue;
      }
      if (c == '\n') ++line_;  // ill-formed, but keep line counts sane
      ++i_;
      if (c == '"') return;
    }
  }

  void skip_char_literal() {
    ++i_;
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (c == '\\') {
        i_ += 2;
        continue;
      }
      ++i_;
      if (c == '\'' || c == '\n') return;
    }
  }

  void skip_number() {
    // pp-number: digits, letters, '_', '\'', and exponent signs. None
    // of the rules care about numeric values, so they are not emitted.
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (ident_char(c) || c == '\'' || c == '.') {
        ++i_;
        continue;
      }
      if ((c == '+' || c == '-') && i_ > 0 &&
          (text_[i_ - 1] == 'e' || text_[i_ - 1] == 'E' ||
           text_[i_ - 1] == 'p' || text_[i_ - 1] == 'P')) {
        ++i_;
        continue;
      }
      return;
    }
  }

  void lex_identifier() {
    const std::size_t b = i_;
    while (i_ < text_.size() && ident_char(text_[i_])) ++i_;
    std::string id(text_.substr(b, i_ - b));
    if (i_ < text_.size() && text_[i_] == '"' && literal_prefix(id)) {
      skip_string(/*raw=*/id.back() == 'R');
      return;
    }
    emit(std::move(id), /*ident=*/true);
  }

  void lex_punct() {
    // '->' and '::' surface as single tokens; everything else is one
    // character. That is all the structure the rules need.
    if (text_[i_] == '-' && peek(1) == '>') {
      emit("->", false);
      i_ += 2;
      return;
    }
    if (text_[i_] == ':' && peek(1) == ':') {
      emit("::", false);
      i_ += 2;
      return;
    }
    emit(std::string(1, text_[i_]), false);
    ++i_;
  }

  std::uint32_t intern(const std::string& name) {
    for (std::uint32_t j = 0; j < out_.functions.size(); ++j)
      if (out_.functions[j] == name) return j;
    out_.functions.push_back(name);
    return static_cast<std::uint32_t>(out_.functions.size() - 1);
  }

  std::uint32_t current_fn() const {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it)
      if (*it != Token::kNoFn) return *it;
    return Token::kNoFn;
  }

  void emit(std::string text, bool ident) {
    Token t;
    t.line = line_;
    t.ident = ident;
    t.fn = current_fn();
    t.text = text;
    track_function(t);
    out_.tokens.push_back(std::move(t));
  }

  // ctags-style function attribution: remember the identifier that
  // opens a top-level parameter list; when the matching ')' is later
  // followed by '{', that identifier names the new brace frame.
  void track_function(const Token& t) {
    if (t.ident) {
      prev_ident_ = control_keyword(t.text) ? std::string() : t.text;
      return;
    }
    if (t.text == "(") {
      if (paren_depth_ == 0) {
        candidate_ = prev_ident_;
        armed_ = false;
      }
      ++paren_depth_;
    } else if (t.text == ")") {
      if (paren_depth_ > 0) --paren_depth_;
      if (paren_depth_ == 0 && !candidate_.empty()) armed_ = true;
    } else if (t.text == ";") {
      if (paren_depth_ == 0) {
        candidate_.clear();
        armed_ = false;
      }
    } else if (t.text == "{") {
      frames_.push_back(armed_ ? intern(candidate_) : Token::kNoFn);
      candidate_.clear();
      armed_ = false;
    } else if (t.text == "}") {
      if (!frames_.empty()) frames_.pop_back();
    }
    prev_ident_.clear();
  }

  std::string_view text_;
  ScannedFile out_;
  std::size_t i_ = 0;
  std::uint32_t line_ = 1;
  bool at_line_start_ = true;

  // function-attribution state
  std::string prev_ident_;
  std::string candidate_;
  bool armed_ = false;
  int paren_depth_ = 0;
  std::vector<std::uint32_t> frames_;
};

}  // namespace

ScannedFile scan_source(std::string path, std::string_view text) {
  return Lexer(std::move(path), text).run();
}

}  // namespace parbounds::analysis::det
