#include "analysis/static/detlint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <sstream>

namespace parbounds::analysis::det {

namespace {

// ----- registry ---------------------------------------------------------------

const std::vector<DetRule>& registry() {
  static const std::vector<DetRule> rules = {
      {"det.wall-clock", Severity::Error,
       "wall-clock read outside an annotated telemetry site"},
      {"det.rng", Severity::Error,
       "nondeterministic RNG outside the src/util seed plumbing"},
      {"det.hw-concurrency", Severity::Error,
       "machine-shape read that could leak into shard boundaries"},
      {"det.unordered-iter", Severity::Error,
       "iteration over an unordered container (unspecified order)"},
      {"det.float-accum", Severity::Error,
       "floating-point arithmetic in a commit/merge/shard path"},
      {"det.atomic-order", Severity::Error,
       "atomic operation without an explicit memory_order"},
      {"det.bad-suppression", Severity::Error,
       "malformed DETLINT suppression note"},
      {"det.unused-suppression", Severity::Warning,
       "DETLINT suppression note that absorbed no finding"},
  };
  return rules;
}

bool has_prefix(std::string_view s, std::string_view p) {
  return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
}

bool any_of(std::string_view s, const char* const* names, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (s == names[i]) return true;
  return false;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

Finding make(const ScannedFile& f, const char* rule, Severity sev,
             std::uint32_t line, std::string message) {
  Finding fd;
  fd.rule = rule;
  fd.severity = sev;
  fd.phase = Finding::kNoPhase;
  fd.file = f.path;
  fd.line = line;
  fd.message = std::move(message);
  return fd;
}

// ----- simple identifier rules ------------------------------------------------

// det.wall-clock: the telemetry layer (src/obs/) reads clocks by
// definition, and the bench harnesses measure wall time by design —
// everywhere else a clock read needs a DETLINT annotation naming why
// it cannot reach committed state.
void rule_wall_clock(const ScannedFile& f, std::vector<Finding>& out) {
  if (has_prefix(f.path, "src/obs/") || has_prefix(f.path, "bench/")) return;
  static const char* const names[] = {"steady_clock", "system_clock",
                                      "high_resolution_clock",
                                      "clock_gettime", "gettimeofday"};
  for (const Token& t : f.tokens)
    if (t.ident && any_of(t.text, names, std::size(names)))
      out.push_back(make(f, "det.wall-clock", Severity::Error, t.line,
                         "wall-clock read ('" + t.text +
                             "') outside an annotated telemetry site"));
}

// det.rng: all randomness must flow through the seeded Rng in
// src/util/rng.* so trials are reproducible from (seed, config). The
// libc names only fire as calls — `rand(` — so a local variable that
// merely shadows the name stays quiet; the type-like names fire on
// any mention.
void rule_rng(const ScannedFile& f, std::vector<Finding>& out) {
  if (has_prefix(f.path, "src/util/")) return;
  static const char* const calls[] = {"rand", "srand", "drand48", "lrand48",
                                      "mrand48"};
  static const char* const types[] = {"random_device", "random_shuffle"};
  const auto& tk = f.tokens;
  for (std::size_t i = 0; i < tk.size(); ++i) {
    if (!tk[i].ident) continue;
    const bool call = any_of(tk[i].text, calls, std::size(calls)) &&
                      i + 1 < tk.size() && tk[i + 1].text == "(";
    if (call || any_of(tk[i].text, types, std::size(types)))
      out.push_back(make(f, "det.rng", Severity::Error, tk[i].line,
                         "nondeterministic RNG ('" + tk[i].text +
                             "') outside the src/util seed plumbing"));
  }
}

// det.hw-concurrency: shard boundaries and committed results must be
// pure functions of the input; a machine-shape read feeding them would
// make reports differ across hosts. Legitimate pool-size defaults get
// an annotation stating they never reach shard arithmetic.
void rule_hw_concurrency(const ScannedFile& f, std::vector<Finding>& out) {
  static const char* const names[] = {"hardware_concurrency", "get_nprocs",
                                      "sched_getaffinity", "sysconf"};
  for (const Token& t : f.tokens)
    if (t.ident && any_of(t.text, names, std::size(names)))
      out.push_back(make(f, "det.hw-concurrency", Severity::Error, t.line,
                         "machine-shape read ('" + t.text +
                             "') — shard boundaries and committed state "
                             "must not depend on host shape"));
}

// ----- det.unordered-iter -----------------------------------------------------

bool unordered_container(std::string_view s) {
  static const char* const names[] = {"unordered_map", "unordered_set",
                                      "unordered_multimap",
                                      "unordered_multiset"};
  return any_of(s, names, std::size(names));
}

// Names declared (in this file) with an unordered container type.
std::vector<std::string> collect_unordered_names(const ScannedFile& f) {
  std::vector<std::string> vars;
  const auto& tk = f.tokens;
  for (std::size_t i = 0; i + 1 < tk.size(); ++i) {
    if (!tk[i].ident || !unordered_container(tk[i].text)) continue;
    if (tk[i + 1].text != "<") continue;
    // Match the template argument list ('>>' arrives as two '>').
    std::size_t j = i + 2;
    int depth = 1;
    while (j < tk.size() && depth > 0) {
      if (tk[j].text == "<") ++depth;
      if (tk[j].text == ">") --depth;
      if (tk[j].text == ";" || tk[j].text == "{") break;  // not a decl
      ++j;
    }
    if (depth != 0) continue;
    // Declarators: skip cv/ref tokens, then one identifier per comma.
    while (j < tk.size()) {
      while (j < tk.size() &&
             (tk[j].text == "&" || tk[j].text == "*" || tk[j].text == "const"))
        ++j;
      if (j >= tk.size() || !tk[j].ident) break;
      // `type name(` declares a function returning the container, not
      // a variable — iteration through calls is cross-file dataflow
      // and out of scope for the lexical tier.
      if (j + 1 < tk.size() && tk[j + 1].text == "(") break;
      vars.push_back(tk[j].text);
      if (j + 1 < tk.size() && tk[j + 1].text == ",") {
        j += 2;
        continue;
      }
      break;
    }
  }
  return vars;
}

void rule_unordered_iter(const ScannedFile& f, std::vector<Finding>& out) {
  const std::vector<std::string> vars = collect_unordered_names(f);
  if (vars.empty()) return;
  auto tracked = [&](const std::string& name) {
    return std::find(vars.begin(), vars.end(), name) != vars.end();
  };
  const auto& tk = f.tokens;
  for (std::size_t i = 0; i < tk.size(); ++i) {
    // Range-for whose range expression names a tracked container.
    if (tk[i].ident && tk[i].text == "for" && i + 1 < tk.size() &&
        tk[i + 1].text == "(") {
      std::size_t j = i + 2;
      int depth = 1;
      bool past_colon = false;
      std::string hit;
      while (j < tk.size() && depth > 0) {
        if (tk[j].text == "(") ++depth;
        if (tk[j].text == ")") --depth;
        if (depth == 1 && tk[j].text == ":") past_colon = true;
        if (past_colon && tk[j].ident && hit.empty() && tracked(tk[j].text))
          hit = tk[j].text;
        ++j;
      }
      if (!hit.empty())
        out.push_back(make(f, "det.unordered-iter", Severity::Error,
                           tk[i].line,
                           "iteration over unordered container '" + hit +
                               "' has unspecified order"));
      continue;
    }
    // Explicit iterator walks: tracked.begin() / tracked->cbegin().
    // `end()` alone is NOT a marker — `it == m.end()` is the find
    // idiom and never walks the container.
    if (tk[i].ident && tracked(tk[i].text) && i + 2 < tk.size() &&
        (tk[i + 1].text == "." || tk[i + 1].text == "->")) {
      static const char* const iters[] = {"begin", "cbegin"};
      if (tk[i + 2].ident && any_of(tk[i + 2].text, iters, std::size(iters)))
        out.push_back(make(f, "det.unordered-iter", Severity::Error,
                           tk[i].line,
                           "iteration over unordered container '" +
                               tk[i].text + "' has unspecified order"));
    }
  }
}

// ----- det.float-accum --------------------------------------------------------

// Merged/committed quantities must be exact integers combined with
// commutative ops (docs/PERF.md); float math inside a function whose
// name mentions commit/merge/shard is where a violation would live.
bool commit_path_fn(const std::string& fn) {
  const std::string l = lower(fn);
  return l.find("commit") != std::string::npos ||
         l.find("merge") != std::string::npos ||
         l.find("shard") != std::string::npos;
}

void rule_float_accum(const ScannedFile& f, std::vector<Finding>& out) {
  for (const Token& t : f.tokens) {
    if (!t.ident || (t.text != "float" && t.text != "double")) continue;
    if (t.fn == Token::kNoFn) continue;
    const std::string& fn = f.functions[t.fn];
    if (!commit_path_fn(fn)) continue;
    out.push_back(make(f, "det.float-accum", Severity::Error, t.line,
                       "floating-point type '" + t.text +
                           "' in commit/merge path '" + fn + "'"));
  }
}

// ----- det.atomic-order -------------------------------------------------------

void rule_atomic_order(const ScannedFile& f, std::vector<Finding>& out) {
  static const char* const ops[] = {
      "load",      "store",     "exchange",
      "fetch_add", "fetch_sub", "fetch_and",
      "fetch_or",  "fetch_xor", "compare_exchange_weak",
      "compare_exchange_strong"};
  const auto& tk = f.tokens;
  for (std::size_t i = 1; i + 1 < tk.size(); ++i) {
    if (!tk[i].ident || !any_of(tk[i].text, ops, std::size(ops))) continue;
    if (tk[i - 1].text != "." && tk[i - 1].text != "->") continue;
    if (tk[i + 1].text != "(") continue;
    std::size_t j = i + 2;
    int depth = 1;
    bool ordered = false;
    while (j < tk.size() && depth > 0) {
      if (tk[j].text == "(") ++depth;
      if (tk[j].text == ")") --depth;
      if (tk[j].ident && has_prefix(tk[j].text, "memory_order"))
        ordered = true;
      ++j;
    }
    if (!ordered)
      out.push_back(make(f, "det.atomic-order", Severity::Error, tk[i].line,
                         "atomic '" + tk[i].text +
                             "' without an explicit memory_order"));
  }
}

// ----- suppressions -----------------------------------------------------------

bool valid_note(const Suppression& s) {
  return known_rule(s.rule) && !s.reason.empty();
}

void apply_suppressions(ScannedFile& f, std::vector<Finding>& findings) {
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& fd : findings) {
    bool absorbed = false;
    for (Suppression& s : f.suppressions) {
      if (!valid_note(s) || s.rule != fd.rule) continue;
      if (s.line == fd.line || s.line + 1 == fd.line) {
        s.used = true;
        absorbed = true;
      }
    }
    if (!absorbed) kept.push_back(std::move(fd));
  }
  findings = std::move(kept);
}

void note_findings(const ScannedFile& f, std::vector<Finding>& out) {
  for (const Suppression& s : f.suppressions) {
    if (s.rule.empty()) {
      out.push_back(make(f, "det.bad-suppression", Severity::Error, s.line,
                         "malformed DETLINT note: unterminated rule list"));
      continue;
    }
    if (!known_rule(s.rule)) {
      out.push_back(make(f, "det.bad-suppression", Severity::Error, s.line,
                         "malformed DETLINT note: unknown rule '" + s.rule +
                             "'"));
      continue;
    }
    if (s.reason.empty()) {
      out.push_back(make(f, "det.bad-suppression", Severity::Error, s.line,
                         "malformed DETLINT note: missing reason for '" +
                             s.rule + "'"));
      continue;
    }
    if (!s.used)
      out.push_back(make(f, "det.unused-suppression", Severity::Warning,
                         s.line,
                         "DETLINT note for '" + s.rule +
                             "' absorbed no finding"));
  }
}

}  // namespace

// ----- public surface ---------------------------------------------------------

const std::vector<DetRule>& rule_registry() { return registry(); }

bool known_rule(std::string_view id) {
  for (const DetRule& r : registry())
    if (r.id == id) return true;
  return false;
}

Report lint_file(ScannedFile& f) {
  std::vector<Finding> findings;
  rule_wall_clock(f, findings);
  rule_rng(f, findings);
  rule_hw_concurrency(f, findings);
  rule_unordered_iter(f, findings);
  rule_float_accum(f, findings);
  rule_atomic_order(f, findings);

  apply_suppressions(f, findings);
  note_findings(f, findings);

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return a.message < b.message;
                   });
  Report r;
  r.findings = std::move(findings);
  return r;
}

Baseline Baseline::parse(std::string_view text) {
  Baseline b;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string rule, path, count;
    if (!(fields >> rule)) continue;  // blank / comment-only line
    std::string extra;
    if (!(fields >> path >> count) || (fields >> extra)) {
      b.errors.push_back("line " + std::to_string(lineno) +
                         ": expected 'rule path count'");
      continue;
    }
    if (!known_rule(rule)) {
      b.errors.push_back("line " + std::to_string(lineno) +
                         ": unknown rule '" + rule + "'");
      continue;
    }
    std::uint64_t n = 0;
    try {
      n = std::stoull(count);
    } catch (const std::exception&) {
      b.errors.push_back("line " + std::to_string(lineno) +
                         ": bad count '" + count + "'");
      continue;
    }
    if (n == 0) {
      b.errors.push_back("line " + std::to_string(lineno) +
                         ": count must be positive");
      continue;
    }
    b.allow[{rule, path}] += n;
  }
  return b;
}

BaselineOutcome apply_baseline(Report& r, const Baseline& b) {
  BaselineOutcome out;
  auto remaining = b.allow;
  std::vector<Finding> kept;
  kept.reserve(r.findings.size());
  for (Finding& f : r.findings) {
    const auto it = remaining.find({f.rule, f.file});
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      ++out.absorbed;
      continue;
    }
    kept.push_back(std::move(f));
  }
  r.findings = std::move(kept);
  for (const auto& [key, left] : remaining)
    if (left > 0)
      out.stale.push_back(key.first + " " + key.second + " (" +
                          std::to_string(left) + " unused allowance(s))");
  return out;
}

}  // namespace parbounds::analysis::det
