#pragma once
// parlint: run a rule set over an execution trace, post-mortem or
// inline.
//
//   Linter lint(cfg);                    // default rule set
//   Report r = lint.run(machine.trace());
//   if (!r.clean()) std::cout << r.to_jsonl();
//
// or hook the checks into a live machine so every commit is audited as
// it happens:
//
//   InlineLinter watch(cfg);
//   machine.set_observer(&watch);
//   ... drive the machine ...
//   watch.report();                      // findings so far

#include <memory>
#include <vector>

#include "analysis/rules.hpp"
#include "core/observer.hpp"

namespace parbounds::analysis {

class Linter {
 public:
  /// A linter with the default rule set.
  explicit Linter(LintConfig cfg = {});
  /// A linter with no rules; add them with add_rule.
  struct Empty {};
  Linter(Empty, LintConfig cfg);

  void add_rule(std::unique_ptr<Rule> rule);
  const LintConfig& config() const { return cfg_; }

  /// Run every rule over every phase, then the trace-level checks.
  Report run(const ExecutionTrace& t) const;

  /// Run the per-phase rules on one phase (inline mode building block).
  void run_phase(const ExecutionTrace& t, std::size_t index,
                 Report& out) const;

  /// Run only the trace-level checks.
  void run_trace_checks(const ExecutionTrace& t, Report& out) const;

 private:
  LintConfig cfg_;
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// AnalysisObserver adapter: audits every phase as the engine commits
/// it. With throw_on_error, the first Error finding raises
/// ModelViolation-style feedback at the exact phase that produced it
/// (the exception type is std::runtime_error to keep analysis/
/// independent of engine headers' throw conventions).
class InlineLinter final : public AnalysisObserver {
 public:
  explicit InlineLinter(LintConfig cfg = {}, bool throw_on_error = false);

  void on_phase_committed(const ExecutionTrace& t,
                          std::size_t index) override;

  const Report& report() const { return report_; }
  Report take_report() { return std::move(report_); }

 private:
  Linter linter_;
  bool throw_on_error_;
  Report report_;
};

}  // namespace parbounds::analysis
