#include "analysis/rules.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "util/mathx.hpp"

namespace parbounds::analysis {

void Rule::check_trace(const ExecutionTrace&, const LintConfig&,
                       Report&) const {}

std::optional<CostModel> effective_model(const ExecutionTrace& t,
                                         const LintConfig& cfg) {
  if (cfg.model.has_value()) return cfg.model;
  switch (t.kind) {
    case ExecutionTrace::Kind::Qsm:
      return CostModel::Qsm;
    case ExecutionTrace::Kind::SQsm:
      return CostModel::SQsm;
    case ExecutionTrace::Kind::QsmGd:
      return CostModel::QsmGd;
    case ExecutionTrace::Kind::Bsp:
    case ExecutionTrace::Kind::Gsm:
      return std::nullopt;  // audited with their own formulas
  }
  return std::nullopt;
}

namespace {

bool is_shared_memory(const ExecutionTrace& t) {
  return t.kind != ExecutionTrace::Kind::Bsp;
}

struct CellCounts {
  std::unordered_map<Addr, std::uint64_t> readers;
  std::unordered_map<Addr, std::uint64_t> writers;
};

CellCounts count_cells(const PhaseTrace& ph) {
  CellCounts c;
  for (const auto& e : ph.events)
    ++(e.is_write ? c.writers : c.readers)[e.addr];
  return c;
}

std::vector<Addr> sorted_keys(
    const std::vector<Addr>& cells) {
  std::vector<Addr> out = cells;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

// ----- race ------------------------------------------------------------------

void RaceRule::check_phase(const ExecutionTrace& t, std::size_t index,
                           const LintConfig& cfg, Report& out) const {
  if (!is_shared_memory(t)) return;  // BSP sends are not cell accesses
  const PhaseTrace& ph = t.phases[index];

  if (ph.events.empty()) {
    // No detail events: exclusivity is still checkable from the summary.
    if (cfg.erew && ph.stats.kappa() > 1) {
      out.add({"race.exclusive",
               Severity::Error,
               index,
               {},
               "EREW run has contention " +
                   std::to_string(ph.stats.kappa()) +
                   " (recorded kappa; no events to localize)"});
    }
    return;
  }

  const CellCounts c = count_cells(ph);

  // Queue rule (Section 2.1 / 2.2): reads XOR writes per cell per phase.
  std::vector<Addr> mixed;
  // DETLINT(det.unordered-iter): membership collect; report sorts via sorted_keys
  for (const auto& [a, cnt] : c.readers) {
    (void)cnt;
    if (c.writers.count(a) != 0) mixed.push_back(a);
  }
  if (!mixed.empty()) {
    out.add({"race.rw-mix", Severity::Error, index, sorted_keys(mixed),
             std::to_string(mixed.size()) +
                 " cell(s) both read and written in one phase"});
  }

  // EREW discipline: no concurrent access at all.
  if (cfg.erew) {
    std::vector<Addr> contended;
    // DETLINT(det.unordered-iter): membership collect; report sorts via sorted_keys
    for (const auto& [a, cnt] : c.readers)
      if (cnt > 1) contended.push_back(a);
    // DETLINT(det.unordered-iter): membership collect; report sorts via sorted_keys
    for (const auto& [a, cnt] : c.writers)
      if (cnt > 1) contended.push_back(a);
    if (!contended.empty()) {
      out.add({"race.exclusive", Severity::Error, index,
               sorted_keys(contended),
               std::to_string(contended.size()) +
                   " cell(s) accessed concurrently on an EREW run"});
    }
  }
}

// ----- audit.kappa ------------------------------------------------------------

void KappaAuditRule::check_phase(const ExecutionTrace& t, std::size_t index,
                                 const LintConfig&, Report& out) const {
  const PhaseTrace& ph = t.phases[index];
  if (ph.events.empty()) return;
  const PhaseStats& st = ph.stats;

  std::string drift;
  auto expect = [&drift](const char* what, std::uint64_t recorded,
                         std::uint64_t derived) {
    if (recorded == derived) return;
    if (!drift.empty()) drift += "; ";
    drift += std::string(what) + " recorded " + std::to_string(recorded) +
             " but events give " + std::to_string(derived);
  };

  std::uint64_t n_reads = 0, n_writes = 0;
  for (const auto& e : ph.events) (e.is_write ? n_writes : n_reads) += 1;

  if (t.kind == ExecutionTrace::Kind::Bsp) {
    // A superstep's events are its sends: proc = source, addr =
    // destination component. Re-derive the h-relation and fan-in.
    std::unordered_map<ProcId, std::uint64_t> sent;
    std::unordered_map<Addr, std::uint64_t> recv;
    for (const auto& e : ph.events) {
      ++sent[e.proc];
      ++recv[e.addr];
    }
    std::uint64_t h = 0, fan_in = 0;
    // DETLINT(det.unordered-iter): commutative max-reduction; order-independent
    for (const auto& [p, c] : sent) {
      (void)p;
      h = std::max(h, c);
    }
    // DETLINT(det.unordered-iter): commutative max-reduction; order-independent
    for (const auto& [p, c] : recv) {
      (void)p;
      fan_in = std::max(fan_in, c);
      h = std::max(h, c);
    }
    expect("h", ph.h, h);
    expect("m_rw", st.m_rw, std::max<std::uint64_t>(1, h));
    expect("kappa_r", st.kappa_r, std::max<std::uint64_t>(1, fan_in));
    expect("kappa_w", st.kappa_w, std::max<std::uint64_t>(1, fan_in));
    expect("reads", st.reads, n_writes);
    expect("writes", st.writes, n_writes);
  } else {
    std::unordered_map<ProcId, std::uint64_t> proc_r, proc_w;
    const CellCounts c = count_cells(ph);
    for (const auto& e : ph.events) ++(e.is_write ? proc_w : proc_r)[e.proc];

    std::uint64_t m_rw = 1;
    if (t.kind == ExecutionTrace::Kind::Gsm) {
      // GSM counts reads and writes together per processor.
      std::unordered_map<ProcId, std::uint64_t> combined = proc_r;
      // DETLINT(det.unordered-iter): commutative additive merge; order-independent
      for (const auto& [p, n] : proc_w) combined[p] += n;
      // DETLINT(det.unordered-iter): commutative max-reduction; order-independent
      for (const auto& [p, n] : combined) {
        (void)p;
        m_rw = std::max(m_rw, n);
      }
    } else {
      // DETLINT(det.unordered-iter): commutative max-reduction; order-independent
      for (const auto& [p, n] : proc_r) {
        (void)p;
        m_rw = std::max(m_rw, n);
      }
      // DETLINT(det.unordered-iter): commutative max-reduction; order-independent
      for (const auto& [p, n] : proc_w) {
        (void)p;
        m_rw = std::max(m_rw, n);
      }
    }
    std::uint64_t kr = 1, kw = 1;
    // DETLINT(det.unordered-iter): commutative max-reduction; order-independent
    for (const auto& [a, n] : c.readers) {
      (void)a;
      kr = std::max(kr, n);
    }
    // DETLINT(det.unordered-iter): commutative max-reduction; order-independent
    for (const auto& [a, n] : c.writers) {
      (void)a;
      kw = std::max(kw, n);
    }
    expect("m_rw", st.m_rw, m_rw);
    expect("kappa_r", st.kappa_r, kr);
    expect("kappa_w", st.kappa_w, kw);
    expect("reads", st.reads, n_reads);
    expect("writes", st.writes, n_writes);
  }

  if (!drift.empty())
    out.add({"audit.kappa", Severity::Error, index, {}, drift});
}

// ----- audit.cost -------------------------------------------------------------

void CostAuditRule::check_phase(const ExecutionTrace& t, std::size_t index,
                                const LintConfig& cfg, Report& out) const {
  const PhaseTrace& ph = t.phases[index];
  const PhaseStats& st = ph.stats;

  std::uint64_t expected = 0;
  if (t.kind == ExecutionTrace::Kind::Bsp) {
    expected = std::max({st.m_op, t.g * ph.h, t.L});
  } else if (t.kind == ExecutionTrace::Kind::Gsm) {
    const std::uint64_t b =
        std::max<std::uint64_t>({1, ceil_div(st.m_rw, cfg.alpha),
                                 ceil_div(st.kappa(), cfg.beta)});
    expected = std::max(cfg.alpha, cfg.beta) * b;
  } else {
    const auto model = effective_model(t, cfg);
    if (!model.has_value()) return;
    expected = phase_cost(*model, t.g, st, t.d);
  }

  if (ph.cost != expected) {
    out.add({"audit.cost",
             Severity::Error,
             index,
             {},
             "charged cost " + std::to_string(ph.cost) +
                 " but stats recompute to " + std::to_string(expected)});
  }
}

// ----- rounds.budget ----------------------------------------------------------

void RoundBudgetRule::check_phase(const ExecutionTrace& t, std::size_t index,
                                  const LintConfig& cfg, Report& out) const {
  if (cfg.n == 0 || cfg.p == 0) return;
  const PhaseTrace& ph = t.phases[index];

  if (t.kind == ExecutionTrace::Kind::Bsp) {
    // Section 2.3: route an O(n/p)-relation, do O(g*n/p + L) local work.
    const std::uint64_t h_budget =
        std::max<std::uint64_t>(1, cfg.slack * ceil_div(cfg.n, cfg.p));
    const std::uint64_t w_budget =
        cfg.slack * (t.g * ceil_div(cfg.n, cfg.p) + t.L);
    if (ph.h > h_budget || ph.stats.m_op > w_budget) {
      out.add({"rounds.budget",
               Severity::Warning,
               index,
               {},
               "superstep routes h=" + std::to_string(ph.h) + " (budget " +
                   std::to_string(h_budget) + ") with w=" +
                   std::to_string(ph.stats.m_op) + " (budget " +
                   std::to_string(w_budget) + ")"});
    }
    return;
  }

  std::uint64_t budget = 0;
  if (t.kind == ExecutionTrace::Kind::Gsm) {
    const std::uint64_t mu = std::max(cfg.alpha, cfg.beta);
    const std::uint64_t lambda = std::min(cfg.alpha, cfg.beta);
    budget = std::max<std::uint64_t>(
        1, cfg.slack * mu * ceil_div(cfg.n, lambda * cfg.p));
  } else {
    budget = std::max<std::uint64_t>(
        1, cfg.slack * t.g * ceil_div(cfg.n, cfg.p));
  }
  if (ph.cost > budget) {
    out.add({"rounds.budget",
             Severity::Warning,
             index,
             {},
             "phase cost " + std::to_string(ph.cost) +
                 " exceeds the round budget " + std::to_string(budget) +
                 " for n=" + std::to_string(cfg.n) +
                 ", p=" + std::to_string(cfg.p)});
  }
}

// ----- mapping.precondition ---------------------------------------------------

void MappingPreconditionRule::check_phase(const ExecutionTrace&, std::size_t,
                                          const LintConfig&, Report&) const {}

void MappingPreconditionRule::check_trace(const ExecutionTrace& t,
                                          const LintConfig&,
                                          Report& out) const {
  if (t.g == 0) {
    out.add({"mapping.precondition", Severity::Error, Finding::kNoPhase, {},
             "gap parameter g must be >= 1 for the Claim 2.1 mapping"});
  }
  if (t.kind == ExecutionTrace::Kind::QsmGd && t.d == 0) {
    out.add({"mapping.precondition", Severity::Error, Finding::kNoPhase, {},
             "memory gap d must be >= 1 for the Claim 2.2 mapping"});
  }
  if (t.kind == ExecutionTrace::Kind::Bsp && t.L < t.g) {
    out.add({"mapping.precondition", Severity::Error, Finding::kNoPhase, {},
             "BSP trace has L=" + std::to_string(t.L) + " < g=" +
                 std::to_string(t.g) + "; the paper assumes L >= g"});
  }
}

std::vector<std::unique_ptr<Rule>> default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<RaceRule>());
  rules.push_back(std::make_unique<KappaAuditRule>());
  rules.push_back(std::make_unique<CostAuditRule>());
  rules.push_back(std::make_unique<RoundBudgetRule>());
  rules.push_back(std::make_unique<MappingPreconditionRule>());
  return rules;
}

}  // namespace parbounds::analysis
