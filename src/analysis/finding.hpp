#pragma once
// parlint findings: the unit of output of every analysis rule.
//
// A Finding names the rule that fired, the phase it fired on, the cells
// (or BSP destination components) involved, and a human-readable
// message. Reports serialize to JSON lines — one object per finding —
// so downstream tooling can consume `parlint_cli` output without a
// JSON-library dependency on either side.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/trace.hpp"

namespace parbounds::analysis {

enum class Severity : std::uint8_t { Note, Warning, Error };

const char* severity_name(Severity s);

/// Append `s` to `out` as a quoted JSON string literal, escaping the
/// JSON-significant characters. Shared by the JSONL and SARIF writers.
void append_json_string(std::string& out, const std::string& s);

struct Finding {
  std::string rule;          ///< stable rule id, e.g. "race.rw-mix"
  Severity severity = Severity::Error;
  std::uint64_t phase = 0;   ///< 0-based phase index; kNoPhase if trace-level
  std::vector<Addr> cells;   ///< cells (or BSP components) involved
  std::string message;

  // Source-level findings (detlint) carry a location instead of a
  // phase: repo-relative path plus a 1-based line. Trace-level rules
  // leave both unset, and to_json() then omits them — parlint output
  // is byte-identical to what it was before these fields existed.
  std::string file;
  std::uint32_t line = 0;

  static constexpr std::uint64_t kNoPhase = ~std::uint64_t{0};

  Finding() = default;
  // The trace-level shape every parlint rule constructs; source-level
  // findings fill file/line afterwards (or via detlint's factory).
  Finding(std::string rule_, Severity severity_, std::uint64_t phase_,
          std::vector<Addr> cells_, std::string message_)
      : rule(std::move(rule_)),
        severity(severity_),
        phase(phase_),
        cells(std::move(cells_)),
        message(std::move(message_)) {}

  /// One JSON object: {"rule":...,"severity":...,["file":...,"line":...,]
  /// "phase":...,"cells":[...],"message":...}. Trace-level findings emit
  /// phase:null; findings without a source file omit file/line.
  std::string to_json() const;
};

struct Report {
  std::vector<Finding> findings;

  bool clean() const { return findings.empty(); }
  std::size_t errors() const;
  std::size_t count(const std::string& rule) const;

  void add(Finding f) { findings.push_back(std::move(f)); }
  void merge(Report other);

  /// One finding per line; deterministic order (as recorded).
  void write_jsonl(std::ostream& os) const;
  std::string to_jsonl() const;
};

}  // namespace parbounds::analysis
