#include "analysis/spmd_lint.hpp"

#include <string>

#include "util/rng.hpp"

namespace parbounds::analysis {

namespace {

// Actions are compared as (proc, addr, kind, written value). A read's
// *delivered* value is excluded on purpose: it is an input to the
// processor, not an action, and reads of perturbed unrelated cells are
// only a violation once they change what the processor does next.
bool same_action(const MemEvent& a, const MemEvent& b) {
  if (a.proc != b.proc || a.addr != b.addr || a.is_write != b.is_write)
    return false;
  return !a.is_write || a.value == b.value;
}

}  // namespace

Report lint_spmd_locality(const SpmdProgram& program, QsmConfig cfg,
                          std::uint64_t perturb_seed,
                          std::uint64_t perturb_cells) {
  cfg.record_detail = true;

  QsmMachine clean(cfg);
  program(clean);

  QsmMachine perturbed(cfg);
  Rng rng(perturb_seed == 0 ? 1 : perturb_seed);
  for (std::uint64_t i = 0; i < perturb_cells; ++i)
    perturbed.preload(kUnrelatedBase + i,
                      static_cast<Word>(rng.next_below(1u << 30)) + 1);
  program(perturbed);

  Report out;
  const auto& a = clean.trace().phases;
  const auto& b = perturbed.trace().phases;

  if (a.size() != b.size()) {
    out.add({"spmd.phase-count",
             Severity::Error,
             Finding::kNoPhase,
             {},
             "program committed " + std::to_string(a.size()) +
                 " phases on clean memory but " + std::to_string(b.size()) +
                 " with unrelated memory perturbed"});
  }

  const std::size_t phases = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < phases; ++i) {
    const auto& ea = a[i].events;
    const auto& eb = b[i].events;
    std::vector<Addr> cells;
    std::string why;
    if (ea.size() != eb.size()) {
      why = "event counts differ (" + std::to_string(ea.size()) + " vs " +
            std::to_string(eb.size()) + ")";
    } else {
      for (std::size_t k = 0; k < ea.size(); ++k) {
        if (same_action(ea[k], eb[k])) continue;
        cells.push_back(ea[k].addr);
        if (eb[k].addr != ea[k].addr) cells.push_back(eb[k].addr);
        why = "processor " + std::to_string(ea[k].proc) +
              " issued a different action at event " + std::to_string(k);
        break;
      }
    }
    if (!why.empty()) {
      out.add({"spmd.locality", Severity::Error, i, cells,
               why + "; actions depended on memory outside the inbox "
                     "history"});
      break;  // later phases diverge as a consequence; report the first
    }
  }
  return out;
}

}  // namespace parbounds::analysis
