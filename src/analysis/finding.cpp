#include "analysis/finding.hpp"

#include <ostream>
#include <sstream>

namespace parbounds::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "?";
}

// Rule ids and messages are ASCII identifiers / prose from this
// repository; escape the JSON-significant characters anyway so the
// output is always well-formed.
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

std::string Finding::to_json() const {
  std::string out = "{\"rule\":";
  append_json_string(out, rule);
  out += ",\"severity\":";
  append_json_string(out, severity_name(severity));
  if (!file.empty()) {
    out += ",\"file\":";
    append_json_string(out, file);
    out += ",\"line\":";
    out += std::to_string(line);
  }
  out += ",\"phase\":";
  out += (phase == kNoPhase) ? "null" : std::to_string(phase);
  out += ",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(cells[i]);
  }
  out += "],\"message\":";
  append_json_string(out, message);
  out += '}';
  return out;
}

std::size_t Report::errors() const {
  std::size_t n = 0;
  for (const auto& f : findings)
    if (f.severity == Severity::Error) ++n;
  return n;
}

std::size_t Report::count(const std::string& rule) const {
  std::size_t n = 0;
  for (const auto& f : findings)
    if (f.rule == rule) ++n;
  return n;
}

void Report::merge(Report other) {
  findings.insert(findings.end(),
                  std::make_move_iterator(other.findings.begin()),
                  std::make_move_iterator(other.findings.end()));
}

void Report::write_jsonl(std::ostream& os) const {
  for (const auto& f : findings) os << f.to_json() << '\n';
}

std::string Report::to_jsonl() const {
  std::ostringstream os;
  write_jsonl(os);
  return os.str();
}

}  // namespace parbounds::analysis
