#pragma once
// SPMD locality lint.
//
// core/spmd.hpp argues that locality — "a processor's actions are a
// function of its inbox history" — holds for SpmdProcessor programs by
// the type system. That is true only while nobody smuggles a side
// channel into a processor (a captured QsmMachine&, a shared global, a
// peek at memory the program never read). This lint checks the property
// *behaviorally*: it runs the same program twice, on machines that are
// identical except for the contents of unrelated memory (cells the
// program never allocated, perturbed with seeded garbage), and diffs
// the recorded phases. A local program issues identical actions in both
// runs; any divergence — different phase count, different stats, or a
// differing (proc, addr, write-value) event — means some action
// depended on information outside the inbox history.
//
// Rule ids: spmd.phase-count (run lengths differ),
//           spmd.locality    (first divergent phase).

#include <cstdint>
#include <functional>

#include "analysis/finding.hpp"
#include "core/qsm.hpp"

namespace parbounds::analysis {

/// The program under lint: allocate, preload and drive `m` to
/// completion (e.g. call spmd_parity_tree). It is invoked once per run
/// and must behave as a function of the machine handed to it.
using SpmdProgram = std::function<void(QsmMachine&)>;

/// Cells at and above this address are considered unrelated scratch;
/// the perturbed run preloads seeded garbage there. Programs allocate
/// from 0 via QsmMachine::alloc, so the range is never handed out.
inline constexpr Addr kUnrelatedBase = Addr{1} << 40;

Report lint_spmd_locality(const SpmdProgram& program, QsmConfig cfg,
                          std::uint64_t perturb_seed = 1,
                          std::uint64_t perturb_cells = 64);

}  // namespace parbounds::analysis
