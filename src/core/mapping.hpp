#pragma once
// Claim 2.1 mapping executors: replay a recorded QSM / s-QSM / BSP
// execution on a GSM and verify the cost relations the paper proves.
//
// The claim rests on per-phase observations:
//  * a QSM phase with cost max(m_op, g*m_rw, kappa) executes on a
//    GSM(alpha=1, beta=g) in at most the same time (up to the big-step
//    rounding, i.e. a factor <= 2);
//  * an s-QSM phase with cost tau = max(m_op, g*m_rw, g*kappa) executes on
//    a GSM(1, 1) in time at most tau / g;
//  * a BSP superstep with cost tau = max(w, g*h, L) executes on a
//    GSM(L/g, L/g) in time at most tau / g (again up to rounding).
//
// check_claim21 replays each phase of a trace through the GSM big-step
// cost formula and reports the worst ratio (gsm_replay_cost * factor) /
// original_cost — the claim holds when worst_ratio <= slack.

#include <cstdint>

#include "core/trace.hpp"

namespace parbounds {

/// Cost of one phase under GSM(alpha, beta) big-step accounting
/// (Section 2.2): mu * max(1, ceil(m_rw/alpha), ceil(kappa/beta)).
std::uint64_t gsm_phase_cost(const PhaseStats& st, std::uint64_t alpha,
                             std::uint64_t beta);

/// Total cost of replaying every phase of `t` on GSM(alpha, beta).
/// Local computation is free on the GSM (it only has reads and writes),
/// matching "lower bounds that do not consider local computations".
std::uint64_t gsm_replay_cost(const ExecutionTrace& t, std::uint64_t alpha,
                              std::uint64_t beta);

struct MappingReport {
  std::uint64_t original_cost = 0;  ///< time on the source machine
  std::uint64_t gsm_cost = 0;       ///< replay cost on the target GSM
  std::uint64_t factor = 1;         ///< multiplier from Claim 2.1 (1 or g)
  double ratio = 0.0;               ///< factor * gsm_cost / original_cost
  bool holds(double slack = 2.0) const { return ratio <= slack; }
};

/// Apply the Claim 2.1 item matching t.kind:
///   Qsm  -> item 1: T_QSM   >= T_GSM(1, g)       (factor 1)
///   SQsm -> item 2: T_sQSM  >= g * T_GSM(1, 1)   (factor g)
///   Bsp  -> item 3: T_BSP   >= g * T_GSM(L/g, L/g) (factor g)
MappingReport check_claim21(const ExecutionTrace& t);

/// Claim 2.2, for QSM(g, d) traces (kind == QsmGd):
///   g > d : T >= d * T_GSM(1, g/d)    (factor d)
///   d > g : T >= g * T_GSM(d/g, 1)    (factor g)
///   g == d: the s-QSM case, T >= g * T_GSM(1, 1).
MappingReport check_claim22(const ExecutionTrace& t);

}  // namespace parbounds
