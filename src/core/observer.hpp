#pragma once
// Engine-side analysis hook.
//
// Every machine (QSM, BSP, GSM, CRCW) accepts an optional observer that
// is invoked once per committed phase / superstep, after the phase has
// been appended to the machine's ExecutionTrace. The observer sees the
// whole trace so far plus the index of the phase that just committed,
// which is exactly what the parlint per-phase rules consume — this is
// how the analysis layer (src/analysis) runs inline during a simulation
// instead of post-mortem over a recorded trace.
//
// core/ defines only the interface; it must not depend on analysis/.

#include <cstddef>

#include "core/trace.hpp"

namespace parbounds {

class AnalysisObserver {
 public:
  virtual ~AnalysisObserver() = default;

  /// Called right after t.phases[index] was committed. Throwing here
  /// aborts the driver (the phase itself is already applied).
  virtual void on_phase_committed(const ExecutionTrace& t,
                                  std::size_t index) = 0;
};

}  // namespace parbounds
