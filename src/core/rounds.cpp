#include "core/rounds.hpp"

#include <algorithm>

#include "util/mathx.hpp"

namespace parbounds {

namespace {

RoundAudit audit_cost_budget(const ExecutionTrace& t, std::uint64_t budget,
                             std::uint64_t p) {
  RoundAudit a;
  a.budget = budget;
  a.rounds = t.phases.size();
  for (const auto& ph : t.phases) {
    a.max_phase_cost = std::max(a.max_phase_cost, ph.cost);
    if (ph.cost > budget) ++a.violations;
    a.total_work += ph.cost * p;
  }
  a.worst_ratio = budget == 0 ? 0.0
                              : static_cast<double>(a.max_phase_cost) /
                                    static_cast<double>(budget);
  return a;
}

}  // namespace

RoundAudit audit_rounds_qsm(const ExecutionTrace& t, std::uint64_t n,
                            std::uint64_t p, std::uint64_t slack) {
  const std::uint64_t budget =
      std::max<std::uint64_t>(1, slack * t.g * ceil_div(n, p));
  return audit_cost_budget(t, budget, p);
}

RoundAudit audit_rounds_bsp(const ExecutionTrace& t, std::uint64_t n,
                            std::uint64_t p, std::uint64_t slack) {
  RoundAudit a;
  const std::uint64_t h_budget =
      std::max<std::uint64_t>(1, slack * ceil_div(n, p));
  const std::uint64_t w_budget = slack * (t.g * ceil_div(n, p) + t.L);
  a.budget = std::max(t.g * h_budget, std::max(w_budget, t.L));
  a.rounds = t.phases.size();
  for (const auto& ph : t.phases) {
    a.max_phase_cost = std::max(a.max_phase_cost, ph.cost);
    if (ph.h > h_budget || ph.stats.m_op > w_budget) ++a.violations;
    a.total_work += ph.cost * p;
  }
  a.worst_ratio = static_cast<double>(a.max_phase_cost) /
                  static_cast<double>(std::max<std::uint64_t>(1, a.budget));
  return a;
}

RoundAudit audit_rounds_gsm(const ExecutionTrace& t, std::uint64_t n,
                            std::uint64_t p, std::uint64_t alpha,
                            std::uint64_t beta, std::uint64_t slack) {
  const std::uint64_t mu = std::max(alpha, beta);
  const std::uint64_t lambda = std::min(alpha, beta);
  const std::uint64_t budget = std::max<std::uint64_t>(
      1, slack * mu * ceil_div(n, lambda * p));
  return audit_cost_budget(t, budget, p);
}

RoundAudit audit_rounds_gsm_h(const ExecutionTrace& t, std::uint64_t h,
                              std::uint64_t alpha, std::uint64_t beta,
                              std::uint64_t slack) {
  const std::uint64_t mu = std::max(alpha, beta);
  const std::uint64_t lambda = std::min(alpha, beta);
  const std::uint64_t budget =
      std::max<std::uint64_t>(1, slack * mu * ceil_div(h, lambda));
  return audit_cost_budget(t, budget, 1);
}

bool is_linear_work_qsm(const ExecutionTrace& t, std::uint64_t n,
                        std::uint64_t p, std::uint64_t slack) {
  return t.total_work(p) <= slack * t.g * n;
}

}  // namespace parbounds
