#include "core/crcw.hpp"

#include <algorithm>

namespace parbounds {

const std::vector<Word> CrcwMachine::kEmptyInbox = {};

CrcwMachine::CrcwMachine(CrcwConfig cfg) : cfg_(cfg) {
  trace_.kind = ExecutionTrace::Kind::Qsm;  // unit-gap shared memory
  trace_.g = 1;
}

Addr CrcwMachine::alloc(std::uint64_t n) {
  const Addr base = next_base_;
  next_base_ += n;
  return base;
}

void CrcwMachine::preload(Addr base, std::span<const Word> values) {
  for (std::size_t i = 0; i < values.size(); ++i)
    if (values[i] != 0) mem_[base + i] = values[i];
}

void CrcwMachine::preload(Addr addr, Word value) { mem_[addr] = value; }

void CrcwMachine::begin_step() {
  if (in_step_) throw ModelViolation("begin_step inside an open step");
  in_step_ = true;
  reads_.clear();
  writes_.clear();
  locals_.clear();
}

void CrcwMachine::read(ProcId p, Addr a) {
  if (!in_step_) throw ModelViolation("read outside a step");
  reads_.push_back({p, a});
}

void CrcwMachine::write(ProcId p, Addr a, Word v) {
  if (!in_step_) throw ModelViolation("write outside a step");
  writes_.push_back({p, a, v});
}

void CrcwMachine::local(ProcId p, std::uint64_t ops) {
  if (!in_step_) throw ModelViolation("local outside a step");
  locals_.push_back({p, ops});
}

const PhaseTrace& CrcwMachine::commit_step() {
  if (!in_step_) throw ModelViolation("commit_step without begin_step");
  in_step_ = false;

  PhaseTrace ph;
  PhaseStats& st = ph.stats;
  st.reads = reads_.size();
  st.writes = writes_.size();

  std::unordered_map<ProcId, std::uint64_t> rw_count, c_count;
  for (const auto& r : reads_) ++rw_count[r.proc];
  for (const auto& w : writes_) ++rw_count[w.proc];
  for (const auto& [p, c] : rw_count) st.m_rw = std::max(st.m_rw, c);
  for (const auto& [p, ops] : locals_) {
    c_count[p] += ops;
    st.ops += ops;
  }
  for (const auto& [p, c] : c_count) st.m_op = std::max(st.m_op, c);

  // Contention is recorded (for comparisons) but NOT charged.
  std::unordered_map<Addr, std::uint64_t> cell_r, cell_w;
  for (const auto& r : reads_) ++cell_r[r.addr];
  for (const auto& w : writes_) ++cell_w[w.addr];
  for (const auto& [a, c] : cell_r) st.kappa_r = std::max(st.kappa_r, c);
  for (const auto& [a, c] : cell_w) st.kappa_w = std::max(st.kappa_w, c);

  // A PRAM step: every processor does O(1) work; charging max(1, m_op)
  // keeps heavy local computation visible.
  ph.cost = std::max<std::uint64_t>(1, st.m_op);
  time_ += ph.cost;

  // Reads see the pre-step memory.
  inboxes_.clear();
  for (const auto& r : reads_) {
    auto it = mem_.find(r.addr);
    inboxes_[r.proc].push_back(it == mem_.end() ? 0 : it->second);
  }

  // Resolve writes per rule.
  std::unordered_map<Addr, const WriteReq*> winner;
  for (const auto& w : writes_) {
    auto [it, fresh] = winner.emplace(w.addr, &w);
    if (fresh) continue;
    switch (cfg_.rule) {
      case CrcwWriteRule::Common:
        if (it->second->value != w.value)
          throw ModelViolation("CRCW-Common: conflicting writes to cell " +
                               std::to_string(w.addr));
        break;
      case CrcwWriteRule::Arbitrary:
        it->second = &w;  // last queued
        break;
      case CrcwWriteRule::Priority:
        if (w.proc < it->second->proc) it->second = &w;
        break;
    }
  }
  for (const auto& [a, w] : winner) mem_[a] = w->value;

  trace_.phases.push_back(std::move(ph));
  if (observer_ != nullptr)
    observer_->on_phase_committed(trace_, trace_.phases.size() - 1);
  return trace_.phases.back();
}

std::span<const Word> CrcwMachine::inbox(ProcId p) const {
  auto it = inboxes_.find(p);
  return it == inboxes_.end() ? std::span<const Word>(kEmptyInbox)
                              : std::span<const Word>(it->second);
}

Word CrcwMachine::peek(Addr a) const {
  auto it = mem_.find(a);
  return it == mem_.end() ? 0 : it->second;
}

}  // namespace parbounds
