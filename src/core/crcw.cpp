#include "core/crcw.hpp"

#include <algorithm>
#include <string>

#include "core/phase_scan.hpp"
#include "obs/telemetry.hpp"

namespace parbounds {

const std::vector<Word> CrcwMachine::kEmptyInbox = {};

CrcwMachine::CrcwMachine(CrcwConfig cfg)
    : cfg_(cfg), mem_(cfg.mem_dense_limit) {
  trace_.kind = ExecutionTrace::Kind::Qsm;  // unit-gap shared memory
  trace_.g = 1;
}

Addr CrcwMachine::alloc(std::uint64_t n) {
  const Addr base = next_base_;
  next_base_ += n;
  return base;
}

void CrcwMachine::preload(Addr base, std::span<const Word> values) {
  for (std::size_t i = 0; i < values.size(); ++i)
    if (values[i] != 0) mem_.slot(base + i) = values[i];
}

void CrcwMachine::preload(Addr addr, Word value) { mem_.slot(addr) = value; }

void CrcwMachine::begin_step() {
  if (in_step_) throw ModelViolation("begin_step inside an open step");
  in_step_ = true;
  reads_.clear();
  writes_.clear();
  locals_.clear();
}

void CrcwMachine::read(ProcId p, Addr a) {
  if (!in_step_) throw ModelViolation("read outside a step");
  reads_.push_back({p, a});
}

void CrcwMachine::write(ProcId p, Addr a, Word v) {
  if (!in_step_) throw ModelViolation("write outside a step");
  writes_.push_back({p, a, v});
}

void CrcwMachine::local(ProcId p, std::uint64_t ops) {
  if (!in_step_) throw ModelViolation("local outside a step");
  locals_.push_back({p, ops});
}

const PhaseTrace& CrcwMachine::commit_step() {
  if (!in_step_) throw ModelViolation("commit_step without begin_step");
  in_step_ = false;

  PhaseTrace ph;
  PhaseStats& st = ph.stats;
  st.reads = reads_.size();
  st.writes = writes_.size();

  // The PRAM charges reads and writes jointly per processor: one
  // proc-keyed histogram over both request kinds.
  proc_hist_.reset();
  for (const auto& r : reads_) proc_hist_.add(r.proc);
  for (const auto& w : writes_) proc_hist_.add(w.proc);
  st.m_rw = std::max(st.m_rw, proc_hist_.max_run());

  local_scratch_.assign(locals_.begin(), locals_.end());
  const auto local_agg = detail::sort_max_run_sum(local_scratch_);
  st.m_op = std::max(st.m_op, local_agg.max_run);
  st.ops += local_agg.total;

  // Contention is recorded (for comparisons) but NOT charged. One
  // histogram serves both directions, reset in between.
  addr_hist_.reset();
  for (const auto& r : reads_) addr_hist_.add(r.addr);
  st.kappa_r = std::max(st.kappa_r, addr_hist_.max_run());
  addr_hist_.reset();
  for (const auto& w : writes_) addr_hist_.add(w.addr);
  st.kappa_w = std::max(st.kappa_w, addr_hist_.max_run());

  // A PRAM step: every processor does O(1) work; charging max(1, m_op)
  // keeps heavy local computation visible.
  ph.cost = std::max<std::uint64_t>(1, st.m_op);
  time_ += ph.cost;

  // Reads see the pre-step memory.
  inboxes_.begin_phase();
  for (const auto& r : reads_) {
    const Word* cell = mem_.find(r.addr);
    inboxes_.box(r.proc).push_back(cell == nullptr ? 0 : *cell);
  }

  // Resolve writes per rule over addr-sorted groups; within a group the
  // index component keeps issue order, so "last queued" and
  // "first-queued tie-break" mean exactly what they did before.
  wgroup_scratch_.clear();
  for (std::uint32_t i = 0; i < writes_.size(); ++i)
    wgroup_scratch_.push_back({writes_[i].addr, i});
  std::sort(wgroup_scratch_.begin(), wgroup_scratch_.end());
  for (std::size_t lo = 0; lo < wgroup_scratch_.size();) {
    std::size_t hi = lo;
    while (hi < wgroup_scratch_.size() &&
           wgroup_scratch_[hi].first == wgroup_scratch_[lo].first)
      ++hi;
    const WriteReq* win = &writes_[wgroup_scratch_[lo].second];
    for (std::size_t j = lo + 1; j < hi; ++j) {
      const WriteReq& w = writes_[wgroup_scratch_[j].second];
      switch (cfg_.rule) {
        case CrcwWriteRule::Common:
          if (win->value != w.value)
            throw ModelViolation("CRCW-Common: conflicting writes to cell " +
                                 std::to_string(w.addr));
          break;
        case CrcwWriteRule::Arbitrary:
          win = &w;  // last queued
          break;
        case CrcwWriteRule::Priority:
          if (w.proc < win->proc) win = &w;
          break;
      }
    }
    mem_.slot(win->addr) = win->value;
    lo = hi;
  }

  trace_.phases.push_back(std::move(ph));
  if (observer_ != nullptr)
    observer_->on_phase_committed(trace_, trace_.phases.size() - 1);
  obs::phase_hook(trace_, trace_.phases.size() - 1);
  return trace_.phases.back();
}

std::span<const Word> CrcwMachine::inbox(ProcId p) const {
  const std::vector<Word>* box = inboxes_.find(p);
  return box == nullptr ? std::span<const Word>(kEmptyInbox)
                        : std::span<const Word>(*box);
}

Word CrcwMachine::peek(Addr a) const {
  const Word* cell = mem_.find(a);
  return cell == nullptr ? 0 : *cell;
}

}  // namespace parbounds
