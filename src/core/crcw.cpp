#include "core/crcw.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <optional>
#include <string>

#include "core/phase_scan.hpp"
#include "obs/telemetry.hpp"
#include "runtime/parallel_for.hpp"

namespace parbounds {

const std::vector<Word> CrcwMachine::kEmptyInbox = {};

CrcwMachine::CrcwMachine(CrcwConfig cfg)
    : cfg_(cfg), mem_(cfg.mem_dense_limit) {
  trace_.kind = ExecutionTrace::Kind::Qsm;  // unit-gap shared memory
  trace_.g = 1;
}

Addr CrcwMachine::alloc(std::uint64_t n) {
  const Addr base = next_base_;
  next_base_ += n;
  return base;
}

void CrcwMachine::preload(Addr base, std::span<const Word> values) {
  for (std::size_t i = 0; i < values.size(); ++i)
    if (values[i] != 0) mem_.slot(base + i) = values[i];
}

void CrcwMachine::preload(Addr addr, Word value) { mem_.slot(addr) = value; }

void CrcwMachine::begin_step() {
  if (in_step_) throw ModelViolation("begin_step inside an open step");
  in_step_ = true;
  reads_.clear();
  writes_.clear();
  locals_.clear();
}

void CrcwMachine::read(ProcId p, Addr a) {
  if (!in_step_) throw ModelViolation("read outside a step");
  reads_.push_back({p, a});
}

void CrcwMachine::write(ProcId p, Addr a, Word v) {
  if (!in_step_) throw ModelViolation("write outside a step");
  writes_.push_back({p, a, v});
}

void CrcwMachine::local(ProcId p, std::uint64_t ops) {
  if (!in_step_) throw ModelViolation("local outside a step");
  locals_.push_back({p, ops});
}

const PhaseTrace& CrcwMachine::commit_step() {
  if (!in_step_) throw ModelViolation("commit_step without begin_step");
  in_step_ = false;

  PhaseTrace ph;
  PhaseStats& st = ph.stats;
  st.reads = reads_.size();
  st.writes = writes_.size();

  // The PRAM charges reads and writes jointly per processor. Large
  // steps take the sharded scans (path picked by size alone; see
  // phase_scan.hpp for the bit-identical merge argument).
  const std::uint64_t nr = reads_.size();
  const bool sharded =
      nr + writes_.size() >= detail::commit_shard_min_requests();
  if (sharded) {
    ph.commit_shards = detail::kCommitShards;
    sproc_.scan(nr + writes_.size(), [&](std::uint64_t i) {
      return i < nr ? reads_[i].proc : writes_[i - nr].proc;
    });
    sraddr_.scan(nr, [this](std::uint64_t i) { return reads_[i].addr; });
    swaddr_.scan(writes_.size(),
                 [this](std::uint64_t i) { return writes_[i].addr; });
    // DETLINT(det.wall-clock): merge_ns telemetry exception (docs/PERF.md)
    const auto merge_t0 = std::chrono::steady_clock::now();
    st.m_rw = std::max(st.m_rw, sproc_.max_run());
    st.kappa_r = std::max(st.kappa_r, sraddr_.max_run());
    st.kappa_w = std::max(st.kappa_w, swaddr_.max_run());
    ph.commit_merge_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            // DETLINT(det.wall-clock): merge_ns telemetry exception (docs/PERF.md)
            std::chrono::steady_clock::now() - merge_t0)
            .count());
  } else {
    proc_hist_.reset();
    for (const auto& r : reads_) proc_hist_.add(r.proc);
    for (const auto& w : writes_) proc_hist_.add(w.proc);
    st.m_rw = std::max(st.m_rw, proc_hist_.max_run());

    // Contention is recorded (for comparisons) but NOT charged. One
    // histogram serves both directions, reset in between.
    addr_hist_.reset();
    for (const auto& r : reads_) addr_hist_.add(r.addr);
    st.kappa_r = std::max(st.kappa_r, addr_hist_.max_run());
    addr_hist_.reset();
    for (const auto& w : writes_) addr_hist_.add(w.addr);
    st.kappa_w = std::max(st.kappa_w, addr_hist_.max_run());
  }

  local_scratch_.assign(locals_.begin(), locals_.end());
  const auto local_agg = detail::sort_max_run_sum(local_scratch_);
  st.m_op = std::max(st.m_op, local_agg.max_run);
  st.ops += local_agg.total;

  // A PRAM step: every processor does O(1) work; charging max(1, m_op)
  // keeps heavy local computation visible.
  ph.cost = std::max<std::uint64_t>(1, st.m_op);
  time_ += ph.cost;

  // Reads see the pre-step memory. The parallel path partitions
  // processors into ranges (each box is appended to by exactly one
  // shard, in issue order — identical delivered state); strategy, not
  // results, depends on the pool size.
  auto& pool = runtime::ParallelFor::pool();
  const bool par_apply = sharded && pool.threads() > 1;
  inboxes_.begin_phase();
  bool delivered = false;
  if (par_apply && sproc_.all_dense() &&
      inboxes_.reserve_dense(sproc_.dense_extent())) {
    pool.for_shards(sproc_.dense_extent(), detail::kCommitShards,
                    [&](unsigned s, std::uint64_t plo, std::uint64_t phi) {
                      obs::Span span(obs::process_tracer(), "commit.shard", s);
                      for (const auto& r : reads_) {
                        if (r.proc < plo || r.proc >= phi) continue;
                        const Word* cell = mem_.find(r.addr);
                        inboxes_.box(r.proc).push_back(cell ? *cell : 0);
                      }
                    });
    delivered = true;
  }
  if (!delivered) {
    for (const auto& r : reads_) {
      const Word* cell = mem_.find(r.addr);
      inboxes_.box(r.proc).push_back(cell == nullptr ? 0 : *cell);
    }
  }

  // Resolve writes per rule over addr-sorted groups; within a group the
  // index component keeps issue order, so "last queued" and
  // "first-queued tie-break" mean exactly what they did before. The
  // (addr, issue index) pairs are distinct, so parallel_sort yields
  // byte-identical order to std::sort.
  wgroup_scratch_.clear();
  for (std::uint32_t i = 0; i < writes_.size(); ++i)
    wgroup_scratch_.push_back({writes_[i].addr, i});
  runtime::parallel_sort(wgroup_scratch_, pool);

  // A group's winner (and any Common conflict) is a pure function of the
  // group, and a group lies wholly inside one address range — so the
  // ranges resolve independently. To reproduce the serial loop exactly
  // when Common conflicts, the parallel path detects first, then applies
  // only the groups strictly below the smallest conflicting address
  // (= the groups the serial loop applied before throwing).
  const auto resolve_range = [&](std::uint64_t alo, std::uint64_t ahi,
                                 bool apply) -> std::optional<Addr> {
    auto it = std::lower_bound(
        wgroup_scratch_.begin(), wgroup_scratch_.end(),
        std::pair<Addr, std::uint32_t>{alo, 0});
    std::size_t lo = static_cast<std::size_t>(it - wgroup_scratch_.begin());
    while (lo < wgroup_scratch_.size() && wgroup_scratch_[lo].first < ahi) {
      std::size_t hi = lo;
      while (hi < wgroup_scratch_.size() &&
             wgroup_scratch_[hi].first == wgroup_scratch_[lo].first)
        ++hi;
      const WriteReq* win = &writes_[wgroup_scratch_[lo].second];
      for (std::size_t j = lo + 1; j < hi; ++j) {
        const WriteReq& w = writes_[wgroup_scratch_[j].second];
        switch (cfg_.rule) {
          case CrcwWriteRule::Common:
            if (win->value != w.value) return w.addr;  // smallest in range
            break;
          case CrcwWriteRule::Arbitrary:
            win = &w;  // last queued
            break;
          case CrcwWriteRule::Priority:
            if (w.proc < win->proc) win = &w;
            break;
        }
      }
      if (apply) mem_.slot(win->addr) = win->value;
      lo = hi;
    }
    return std::nullopt;
  };

  bool resolved = false;
  if (par_apply && swaddr_.all_dense() &&
      mem_.reserve_dense(swaddr_.dense_extent())) {
    const std::uint64_t extent = swaddr_.dense_extent();
    std::array<std::optional<Addr>, detail::kCommitShards> conflict{};
    pool.for_shards(extent, detail::kCommitShards,
                    [&](unsigned s, std::uint64_t alo, std::uint64_t ahi) {
                      obs::Span span(obs::process_tracer(), "commit.shard", s);
                      conflict[s] = resolve_range(
                          alo, ahi, cfg_.rule != CrcwWriteRule::Common);
                    });
    std::optional<Addr> worst;
    for (const auto& c : conflict)
      if (c && (!worst || *c < *worst)) worst = c;
    if (cfg_.rule == CrcwWriteRule::Common) {
      // Apply the conflict-free prefix, exactly like the serial walk.
      pool.for_shards(worst ? *worst : extent, detail::kCommitShards,
                      [&](unsigned, std::uint64_t alo, std::uint64_t ahi) {
                        resolve_range(alo, ahi, true);
                      });
      if (worst)
        throw ModelViolation("CRCW-Common: conflicting writes to cell " +
                             std::to_string(*worst));
    }
    resolved = true;
  }
  if (!resolved) {
    // Serial walk: apply as we go; on a Common conflict the groups
    // before the clashing address are already applied, matching the
    // historical loop exactly.
    if (const auto c = resolve_range(0, std::uint64_t(-1), true))
      throw ModelViolation("CRCW-Common: conflicting writes to cell " +
                           std::to_string(*c));
  }

  trace_.phases.push_back(std::move(ph));
  if (observer_ != nullptr)
    observer_->on_phase_committed(trace_, trace_.phases.size() - 1);
  obs::phase_hook(trace_, trace_.phases.size() - 1);
  return trace_.phases.back();
}

std::span<const Word> CrcwMachine::inbox(ProcId p) const {
  const std::vector<Word>* box = inboxes_.find(p);
  return box == nullptr ? std::span<const Word>(kEmptyInbox)
                        : std::span<const Word>(*box);
}

Word CrcwMachine::peek(Addr a) const {
  const Word* cell = mem_.find(a);
  return cell == nullptr ? 0 : *cell;
}

}  // namespace parbounds
