#pragma once
// SPMD processor programs: information locality by construction.
//
// The algorithm drivers elsewhere in this repository are ordinary C++
// with global visibility; the engines enforce the *timing* of
// information (reads deliver at commit) but locality — "a processor's
// actions depend only on what it has read" — is a code-review property.
// This layer closes that gap for the algorithms that use it: a
// processor is an object whose step() receives ONLY its own inbox and
// returns the actions for the next phase. The runner moves requests to
// the machine and inboxes back; a processor has no other channel, so
// locality holds by the type system rather than by discipline.
//
// Tests cross-check SPMD executions against the driver versions of the
// same algorithms: identical results and identical per-phase costs.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/qsm.hpp"

namespace parbounds {

struct SpmdAction {
  std::vector<Addr> reads;
  std::vector<std::pair<Addr, Word>> writes;
  std::uint64_t local_ops = 0;
  bool halt = false;
};

class SpmdProcessor {
 public:
  virtual ~SpmdProcessor() = default;
  /// Called once per phase with the values delivered by last phase's
  /// reads (in request order). Return this phase's requests.
  virtual SpmdAction step(unsigned phase, std::span<const Word> inbox) = 0;
};

/// Run the processors on `m` until every one has halted (or max_phases).
/// Returns the number of phases committed. Throws if the program fails
/// to halt within the limit.
std::uint64_t run_spmd(QsmMachine& m,
                       std::vector<std::unique_ptr<SpmdProcessor>>& procs,
                       unsigned max_phases = 1u << 16);

// ----- SPMD formulations of two Section 8 algorithms ------------------------

/// Fan-in `fanin` parity tree over in[0..n): processor b serves block b
/// at every level. Returns the output cell address.
Addr spmd_parity_tree(QsmMachine& m, Addr in, std::uint64_t n,
                      unsigned fanin);

/// Fan-out `fanout` broadcast of cell src into dst[0..n).
void spmd_broadcast(QsmMachine& m, Addr src, Addr dst, std::uint64_t n,
                    std::uint64_t fanout);

}  // namespace parbounds
