#pragma once
// Execution-trace serialization: CSV for plotting and a compact textual
// summary for logs. Bench binaries print tables; downstream users who
// want to plot cost-vs-phase curves can dump any ExecutionTrace with
// these helpers and load the CSV into anything.

#include <iosfwd>
#include <string>

#include "core/trace.hpp"

namespace parbounds {

/// Header: kind,g,d,L,phases,total_cost
/// Rows:   phase,cost,m_op,m_rw,kappa_r,kappa_w,h,reads,writes,ops
/// When the trace carries detail-mode MemEvents, an events section
/// follows (one row per event, phase indices 1-based as above):
///   event_phase,proc,addr,value,is_write
std::string trace_to_csv(const ExecutionTrace& t);
void write_trace_csv(std::ostream& os, const ExecutionTrace& t);

/// One-line human summary: "QSM g=8: 24 phases, cost 192 (max phase 16)".
std::string trace_summary(const ExecutionTrace& t);

/// Parse a CSV produced by trace_to_csv (summary fields, per-phase
/// stats, and the events section when present). Throws
/// std::invalid_argument on malformed input.
ExecutionTrace trace_from_csv(const std::string& csv);

}  // namespace parbounds
