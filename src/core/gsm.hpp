#pragma once
// The Generalized Shared Memory model (GSM), Section 2.2 — the paper's
// lower-bound model, strictly stronger than QSM, s-QSM and BSP.
//
// Differences from the QSM engine:
//  * Cells hold an arbitrarily large amount of information. We model a
//    cell's contents as a sequence of Words; reads deliver the whole cell.
//  * Strong queuing: with multiple writers to a cell, ALL written
//    information is transferred and appended to what the cell already
//    holds (nothing is lost, unlike the QSM's arbitrary-winner rule).
//  * Three parameters alpha, beta, gamma with mu = max(alpha, beta),
//    lambda = min(alpha, beta). A phase with maximum per-processor
//    read/write count m_rw and maximum contention kappa takes
//        b = max(ceil(m_rw / alpha), ceil(kappa / beta))
//    big-steps and costs mu * b time. One big-step "handles" alpha reads
//    and writes per processor and beta contention per cell.
//  * At time 0 every cell may contain information about up to gamma inputs
//    (disjoint across cells) — see load_inputs.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/observer.hpp"
#include "core/qsm.hpp"  // ModelViolation
#include "core/storage.hpp"
#include "core/trace.hpp"

namespace parbounds {

struct GsmConfig {
  std::uint64_t alpha = 1;
  std::uint64_t beta = 1;
  std::uint64_t gamma = 1;
  bool record_detail = false;
  /// Flat-arena span of shared memory; 0 = map-only reference path.
  std::uint64_t mem_dense_limit =
      CellStore<std::vector<Word>>::kDefaultDenseLimit;
};

class GsmMachine {
 public:
  explicit GsmMachine(GsmConfig cfg = {});

  std::uint64_t alpha() const { return cfg_.alpha; }
  std::uint64_t beta() const { return cfg_.beta; }
  std::uint64_t gamma() const { return cfg_.gamma; }
  std::uint64_t mu() const { return std::max(cfg_.alpha, cfg_.beta); }
  std::uint64_t lambda() const { return std::min(cfg_.alpha, cfg_.beta); }

  // ----- memory layout ----------------------------------------------------
  Addr alloc(std::uint64_t n);

  /// Initial input placement: distributes `inputs` over ceil(n/gamma)
  /// consecutive cells starting at `base`, gamma inputs per cell (the
  /// Section 2.2 assumption). Returns the number of cells used.
  std::uint64_t load_inputs(Addr base, std::span<const Word> inputs);

  /// Direct preload of one cell's contents (time-0 state, not charged).
  void preload(Addr a, std::span<const Word> contents);

  // ----- phase protocol -----------------------------------------------------
  void begin_phase();
  void read(ProcId p, Addr a);
  void write(ProcId p, Addr a, Word v);
  /// Write several words to a cell as ONE write request (the GSM lets a
  /// cell absorb arbitrary information; the request still counts once
  /// toward m_rw and contention).
  void write_block(ProcId p, Addr a, std::span<const Word> vs);
  const PhaseTrace& commit_phase();

  /// Cell contents delivered to processor p by its reads last phase;
  /// one entry per read, in issue order.
  std::span<const std::vector<Word>> inbox(ProcId p) const;

  // ----- accounting -----------------------------------------------------
  std::uint64_t time() const { return time_; }
  std::uint64_t big_steps() const { return big_steps_; }
  std::uint64_t phases() const { return trace_.phases.size(); }
  const ExecutionTrace& trace() const { return trace_; }

  std::span<const Word> peek(Addr a) const;

  /// Optional analysis hook, invoked after every commit_phase.
  void set_observer(AnalysisObserver* obs) { observer_ = obs; }

  /// Snapshot of shared memory taken at the first begin_phase — the
  /// "time 0" state the lower-bound trace analysis needs for initial cell
  /// traces (Section 5.1's Trace(c, 0, f)).
  const std::unordered_map<Addr, std::vector<Word>>& initial_memory() const {
    return initial_mem_;
  }

  /// Visit every materialised cell as f(addr, contents) — trace analysis
  /// and test inspection only. Dense-arena cells come first in ascending
  /// address order, then sparse cells in unspecified order; callers that
  /// need a canonical order sort (as they had to with the old map).
  template <class F>
  void for_each_cell(F&& f) const {
    mem_.for_each(std::forward<F>(f));
  }

 private:
  struct ReadReq {
    ProcId proc;
    Addr addr;
  };
  struct WriteReq {
    ProcId proc;
    Addr addr;
    std::vector<Word> values;
  };

  GsmConfig cfg_;
  CellStore<std::vector<Word>> mem_;
  std::unordered_map<Addr, std::vector<Word>> initial_mem_;
  bool started_ = false;
  Addr next_base_ = 0;
  bool in_phase_ = false;
  std::uint64_t time_ = 0;
  std::uint64_t big_steps_ = 0;
  ExecutionTrace trace_;
  AnalysisObserver* observer_ = nullptr;

  std::vector<ReadReq> reads_;
  std::vector<WriteReq> writes_;
  InboxTable<std::vector<std::vector<Word>>> inboxes_;

  // Reusable accounting scratch for commit_phase.
  detail::KeyHistogram proc_hist_{detail::kProcHistogramLimit};
  detail::KeyHistogram raddr_hist_{detail::kAddrHistogramLimit};
  detail::KeyHistogram waddr_hist_{detail::kAddrHistogramLimit};

  // Sharded counterparts for large phases (see phase_scan.hpp).
  detail::ShardedScan sproc_{detail::kProcHistogramLimit};
  detail::ShardedScan sraddr_{detail::kAddrHistogramLimit};
  detail::ShardedScan swaddr_{detail::kAddrHistogramLimit};

  static const std::vector<std::vector<Word>> kEmpty;
  static const std::vector<Word> kEmptyCell;
};

}  // namespace parbounds
