#pragma once
// Hot-path storage for the phase-commit engines (QSM / GSM / CRCW).
//
// Two containers replace the per-phase `unordered_map` churn that used to
// dominate commit_phase profiles:
//
//  * CellStore<Cell> — shared memory with a flat-arena fast path. The
//    engines allocate addresses from 0 upward (`alloc`), so in practice
//    every hot cell lives in a dense low range: those cells are a direct
//    vector index (one load, no hashing). Addresses at or above
//    `dense_limit` fall back to a hash map, so the sparse unbounded
//    address space of the model is still honoured. A `dense_limit` of 0
//    turns the arena off entirely — the map-only reference configuration
//    the equivalence tests compare against.
//
//  * InboxTable<Box> — per-processor delivery boxes indexed by dense
//    ProcId with an epoch counter instead of a per-phase `clear()`. A
//    box is lazily reset the first time it is touched in a phase, so
//    its heap capacity survives across phases and nothing is rehashed.
//    Processor ids beyond the dense range spill into a map whose boxes
//    are epoch-reset the same way (erased never, cleared lazily).
//
// Both containers preserve the observable "present vs absent" semantics
// of the maps they replace: a cell that was never stored reports absent
// (reads deliver the model's default contents), and `for_each` visits
// exactly the cells that were ever materialised — the GSM time-0
// snapshot and the trace analysis depend on that.

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/trace.hpp"

namespace parbounds {

template <class Cell>
class CellStore {
 public:
  /// Default span of the dense arena: 4M cells. Growth below the limit
  /// is lazy and geometric, so a machine only pays for the address range
  /// it actually touches.
  static constexpr std::uint64_t kDefaultDenseLimit = std::uint64_t{1} << 22;

  explicit CellStore(std::uint64_t dense_limit = kDefaultDenseLimit)
      : dense_limit_(dense_limit) {}

  /// Read-only lookup; nullptr when the cell was never stored.
  const Cell* find(Addr a) const {
    if (a < dense_limit_) {
      const auto i = static_cast<std::size_t>(a);
      return (i < dense_.size() && present_[i] != 0) ? &dense_[i] : nullptr;
    }
    const auto it = sparse_.find(a);
    return it == sparse_.end() ? nullptr : &it->second;
  }

  bool contains(Addr a) const { return find(a) != nullptr; }

  /// Mutable slot, creating (and marking present) the cell.
  Cell& slot(Addr a) {
    if (a < dense_limit_) {
      const auto i = static_cast<std::size_t>(a);
      if (i >= dense_.size()) grow(i + 1);
      present_[i] = 1;
      return dense_[i];
    }
    return sparse_[a];
  }

  /// Visit every stored cell as f(addr, cell). Dense cells first in
  /// ascending address order, then sparse cells in unspecified order —
  /// callers that need a canonical order sort, exactly as they did with
  /// the map this store replaced.
  template <class F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < dense_.size(); ++i)
      if (present_[i] != 0) f(static_cast<Addr>(i), dense_[i]);
    // DETLINT(det.unordered-iter): order documented unspecified; callers sort
    for (const auto& [a, c] : sparse_) f(a, c);
  }

  std::uint64_t dense_limit() const { return dense_limit_; }

  /// Pre-grow the arena so every dense address below `hi` has a slot.
  /// After this, concurrent slot() calls on *disjoint dense* addresses
  /// below `hi` are race-free (vector storage is fixed; present_ flags
  /// are distinct bytes). Returns true when the whole range is dense —
  /// the precondition for a range-partitioned parallel write pass;
  /// callers fall back to serial application when it is false.
  bool reserve_dense(Addr hi) {
    if (hi > dense_limit_) return false;
    const auto need = static_cast<std::size_t>(hi);
    if (need > dense_.size()) grow(need);
    return true;
  }

 private:
  void grow(std::size_t need) {
    std::size_t next = std::max<std::size_t>(need, dense_.size() * 2);
    next = std::min<std::size_t>(next,
                                 static_cast<std::size_t>(dense_limit_));
    dense_.resize(next);
    present_.resize(next, 0);
  }

  std::uint64_t dense_limit_;
  std::vector<Cell> dense_;
  std::vector<std::uint8_t> present_;
  std::unordered_map<Addr, Cell> sparse_;
};

template <class Box>
class InboxTable {
 public:
  /// Dense range for processor ids; ids beyond it use the spill map.
  static constexpr ProcId kDenseLimit = ProcId{1} << 20;

  /// Invalidate every box (lazily): boxes keep their heap capacity and
  /// are cleared on first touch in the new phase.
  void begin_phase() { ++epoch_; }

  /// Mutable box for processor p in the current phase.
  Box& box(ProcId p) {
    if (p < kDenseLimit) {
      const auto i = static_cast<std::size_t>(p);
      if (i >= dense_.size()) grow(i + 1);
      if (epochs_[i] != epoch_) {
        dense_[i].clear();
        epochs_[i] = epoch_;
      }
      return dense_[i];
    }
    auto& e = sparse_[p];
    if (e.first != epoch_) {
      e.second.clear();
      e.first = epoch_;
    }
    return e.second;
  }

  /// Pre-grow the dense table so every processor id below `hi` has a
  /// box, and stamp those boxes into the current phase's epoch (clearing
  /// stale contents). After this, concurrent box() calls on *disjoint
  /// dense* ids below `hi` neither grow nor epoch-clear — each touches
  /// only its own Box — so a proc-range-partitioned parallel delivery
  /// pass is race-free. Returns true when the whole range is dense;
  /// callers deliver serially when it is false.
  bool reserve_dense(ProcId hi) {
    if (hi > kDenseLimit) return false;
    const auto need = static_cast<std::size_t>(hi);
    if (need > dense_.size()) grow(need);
    for (std::size_t i = 0; i < need; ++i) {
      if (epochs_[i] != epoch_) {
        dense_[i].clear();
        epochs_[i] = epoch_;
      }
    }
    return true;
  }

  /// Box delivered to p in the current phase; nullptr when nothing was.
  const Box* find(ProcId p) const {
    if (p < kDenseLimit) {
      const auto i = static_cast<std::size_t>(p);
      return (i < dense_.size() && epochs_[i] == epoch_) ? &dense_[i]
                                                         : nullptr;
    }
    const auto it = sparse_.find(p);
    return (it != sparse_.end() && it->second.first == epoch_)
               ? &it->second.second
               : nullptr;
  }

 private:
  void grow(std::size_t need) {
    const std::size_t next = std::max<std::size_t>(need, dense_.size() * 2);
    dense_.resize(next);
    epochs_.resize(next, 0);
  }

  std::uint64_t epoch_ = 1;  // 0 marks "never touched" in epochs_
  std::vector<Box> dense_;
  std::vector<std::uint64_t> epochs_;
  std::unordered_map<ProcId, std::pair<std::uint64_t, Box>> sparse_;
};

}  // namespace parbounds
