#include "core/bsp.hpp"

#include <algorithm>
#include <chrono>

#include "obs/telemetry.hpp"
#include "runtime/parallel_for.hpp"

namespace parbounds {

BspMachine::BspMachine(BspConfig cfg) : cfg_(cfg) {
  if (cfg_.p == 0) throw std::invalid_argument("BSP needs p >= 1");
  if (cfg_.g == 0) throw std::invalid_argument("BSP needs g >= 1");
  if (cfg_.L < cfg_.g)
    throw std::invalid_argument("paper assumes L >= g throughout");
  trace_.kind = ExecutionTrace::Kind::Bsp;
  trace_.g = cfg_.g;
  trace_.L = cfg_.L;
  inboxes_.resize(cfg_.p);
  send_cnt_.assign(cfg_.p, 0);
  recv_cnt_.assign(cfg_.p, 0);
  work_cnt_.assign(cfg_.p, 0);
}

void BspMachine::begin_superstep() {
  if (in_step_) throw ModelViolation("begin_superstep inside open superstep");
  in_step_ = true;
  sends_.clear();
  locals_.clear();
}

void BspMachine::send(ProcId src, ProcId dst, Word value, Word tag) {
  if (!in_step_) throw ModelViolation("send outside a superstep");
  if (src >= cfg_.p || dst >= cfg_.p)
    throw ModelViolation("send endpoint out of range");
  sends_.push_back({src, dst, Message{src, value, tag}});
}

void BspMachine::local(ProcId proc, std::uint64_t ops) {
  if (!in_step_) throw ModelViolation("local outside a superstep");
  if (proc >= cfg_.p) throw ModelViolation("processor id out of range");
  locals_.push_back({proc, ops});
}

const PhaseTrace& BspMachine::commit_superstep() {
  if (!in_step_) throw ModelViolation("commit without begin_superstep");
  in_step_ = false;

  PhaseTrace ph;
  PhaseStats& st = ph.stats;

  // Dense per-processor tallies (endpoints are range-checked at issue
  // time). Maxima are tracked as the counters rise, and the counters are
  // re-zeroed by a second pass over the same requests, so a superstep's
  // accounting costs O(#requests) with no hashing and no O(p) sweep.
  // Large supersteps take the sharded scans over the same send stream
  // (path picked by size alone; see phase_scan.hpp).
  std::uint64_t h = 0;
  std::uint64_t fan_in = 0;
  const bool sharded =
      sends_.size() >= detail::commit_shard_min_requests();
  if (sharded) {
    ph.commit_shards = detail::kCommitShards;
    ssrc_.scan(sends_.size(),
               [this](std::uint64_t i) { return sends_[i].src; });
    sdst_.scan(sends_.size(),
               [this](std::uint64_t i) { return sends_[i].dst; });
    // DETLINT(det.wall-clock): merge_ns telemetry exception (docs/PERF.md)
    const auto merge_t0 = std::chrono::steady_clock::now();
    fan_in = sdst_.max_run();
    h = std::max(ssrc_.max_run(), fan_in);
    ph.commit_merge_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            // DETLINT(det.wall-clock): merge_ns telemetry exception (docs/PERF.md)
            std::chrono::steady_clock::now() - merge_t0)
            .count());
  } else {
    for (const auto& s : sends_) {
      h = std::max(h, ++send_cnt_[s.src]);
      fan_in = std::max(fan_in, ++recv_cnt_[s.dst]);
    }
    h = std::max(h, fan_in);
    for (const auto& s : sends_) {
      send_cnt_[s.src] = 0;
      recv_cnt_[s.dst] = 0;
    }
  }
  for (const auto& [proc, ops] : locals_) {
    work_cnt_[proc] += ops;
    st.m_op = std::max(st.m_op, work_cnt_[proc]);
    st.ops += ops;
  }
  for (const auto& [proc, ops] : locals_) work_cnt_[proc] = 0;
  ph.h = h;

  // Record the h-relation in the shared PhaseStats fields so the Claim 2.1
  // replayer can treat a superstep like a phase: sends look like writes,
  // receives like reads, and per-destination fan-in is the contention.
  st.m_rw = std::max<std::uint64_t>(1, h);
  st.reads = sends_.size();
  st.writes = sends_.size();
  st.kappa_r = std::max<std::uint64_t>(1, fan_in);
  st.kappa_w = st.kappa_r;

  ph.cost = std::max({st.m_op, cfg_.g * h, cfg_.L});
  time_ += ph.cost;

  // Deliver: each destination's box receives its messages in issue
  // order. The parallel path partitions destinations into ranges, so a
  // box is cleared and appended to by exactly one shard — the delivered
  // state is identical to the serial loop.
  auto& pool = runtime::ParallelFor::pool();
  if (sharded && !cfg_.record_detail && pool.threads() > 1) {
    pool.for_shards(cfg_.p, detail::kCommitShards,
                    [&](unsigned s, std::uint64_t plo, std::uint64_t phi) {
                      obs::Span span(obs::process_tracer(), "commit.shard", s);
                      for (std::uint64_t d = plo; d < phi; ++d)
                        inboxes_[d].clear();
                      for (const auto& sr : sends_)
                        if (sr.dst >= plo && sr.dst < phi)
                          inboxes_[sr.dst].push_back(sr.msg);
                    });
  } else {
    for (auto& box : inboxes_) box.clear();
    for (const auto& s : sends_) {
      inboxes_[s.dst].push_back(s.msg);
      if (cfg_.record_detail)
        ph.events.push_back({s.src, s.dst, s.msg.value, true});
    }
  }

  trace_.phases.push_back(std::move(ph));
  if (observer_ != nullptr)
    observer_->on_phase_committed(trace_, trace_.phases.size() - 1);
  obs::phase_hook(trace_, trace_.phases.size() - 1);
  return trace_.phases.back();
}

std::span<const Message> BspMachine::inbox(ProcId proc) const {
  return inboxes_.at(proc);
}

std::pair<std::uint64_t, std::uint64_t> BspMachine::block_range(
    std::uint64_t n, std::uint64_t p, std::uint64_t i) {
  // First (n mod p) components receive ceil(n/p), the rest floor(n/p).
  const std::uint64_t q = n / p;
  const std::uint64_t r = n % p;
  const std::uint64_t lo = i * q + std::min(i, r);
  const std::uint64_t hi = lo + q + (i < r ? 1 : 0);
  return {lo, hi};
}

}  // namespace parbounds
