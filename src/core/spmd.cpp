#include "core/spmd.hpp"

#include <algorithm>

#include "util/mathx.hpp"

namespace parbounds {

std::uint64_t run_spmd(QsmMachine& m,
                       std::vector<std::unique_ptr<SpmdProcessor>>& procs,
                       unsigned max_phases) {
  std::vector<std::uint8_t> halted(procs.size(), 0);
  std::uint64_t committed = 0;
  unsigned phase = 0;

  while (committed < max_phases) {
    struct Pending {
      std::size_t p;
      SpmdAction a;
    };
    std::vector<Pending> pending;
    bool any_action = false;
    for (std::size_t p = 0; p < procs.size(); ++p) {
      if (halted[p]) continue;
      SpmdAction a = procs[p]->step(phase, m.inbox(p));
      if (!a.reads.empty() || !a.writes.empty() || a.local_ops > 0)
        any_action = true;
      pending.push_back({p, std::move(a)});
    }
    if (pending.empty()) return committed;  // everyone halted earlier
    if (!any_action) {
      // A silent round: processors may halt without a final phase.
      bool all_halt = true;
      for (const auto& pd : pending) {
        if (pd.a.halt)
          halted[pd.p] = 1;
        else
          all_halt = false;
      }
      if (all_halt) return committed;
      throw ModelViolation("SPMD: live processors issued no actions");
    }

    m.begin_phase();
    for (const auto& pd : pending) {
      for (const Addr a : pd.a.reads) m.read(pd.p, a);
      for (const auto& [a, v] : pd.a.writes) m.write(pd.p, a, v);
      if (pd.a.local_ops > 0) m.local(pd.p, pd.a.local_ops);
      if (pd.a.halt) halted[pd.p] = 1;
    }
    m.commit_phase();
    ++committed;
    ++phase;
  }
  throw ModelViolation("SPMD program did not halt within the phase limit");
}

namespace {

// ----- parity tree processor --------------------------------------------------

struct TreeLayout {
  std::vector<Addr> level_base;
  std::vector<std::uint64_t> level_len;
  unsigned fanin;
};

class TreeNodeProc : public SpmdProcessor {
 public:
  TreeNodeProc(std::shared_ptr<const TreeLayout> layout, std::uint64_t b)
      : layout_(std::move(layout)), b_(b) {}

  SpmdAction step(unsigned /*phase*/, std::span<const Word> inbox) override {
    SpmdAction act;
    const auto& L = *layout_;
    if (level_ + 1 >= L.level_base.size() ||
        b_ >= L.level_len[level_ + 1]) {
      act.halt = true;
      return act;
    }
    if (!reading_done_) {
      // Read phase for this level: fetch my block.
      const std::uint64_t len = L.level_len[level_];
      const std::uint64_t lo = b_ * L.fanin;
      const std::uint64_t hi =
          std::min<std::uint64_t>(len, lo + L.fanin);
      for (std::uint64_t i = lo; i < hi; ++i)
        act.reads.push_back(L.level_base[level_] + i);
      reading_done_ = true;
      return act;
    }
    // Combine-and-write phase: XOR exactly what arrived.
    Word acc = 0;
    for (const Word v : inbox) acc ^= (v != 0) ? 1 : 0;
    act.writes.emplace_back(L.level_base[level_ + 1] + b_, acc);
    act.local_ops = std::max<std::size_t>(std::size_t{1}, inbox.size());
    reading_done_ = false;
    ++level_;
    // Halt right away if I have no block at the next level.
    if (level_ + 1 >= L.level_base.size() || b_ >= L.level_len[level_ + 1])
      act.halt = true;
    return act;
  }

 private:
  std::shared_ptr<const TreeLayout> layout_;
  std::uint64_t b_;
  unsigned level_ = 0;
  bool reading_done_ = false;
};

// ----- broadcast processor -----------------------------------------------------

struct CastLayout {
  Addr src = 0;
  Addr dst = 0;
  std::uint64_t n = 0;
  std::uint64_t fanout = 2;
  // counts[w] = number of copies that exist entering wave w.
  std::vector<std::uint64_t> counts;
};

class CastProc : public SpmdProcessor {
 public:
  CastProc(std::shared_ptr<const CastLayout> layout, std::uint64_t idx)
      : layout_(std::move(layout)), idx_(idx) {}

  SpmdAction step(unsigned phase, std::span<const Word> inbox) override {
    SpmdAction act;
    const auto& L = *layout_;
    if (idx_ == 0) {
      // Seed: read src at phase 0, write dst[0] at phase 1, halt.
      if (phase == 0) {
        act.reads.push_back(L.src);
      } else {
        act.writes.emplace_back(L.dst + 0, inbox.empty() ? 0 : inbox[0]);
        act.halt = true;
      }
      return act;
    }
    // Wave membership: copies enter at wave w when counts[w-1] <= idx <
    // counts[w]; my read phase is 2w, write phase 2w + 1.
    std::size_t w = 1;
    while (w < L.counts.size() && L.counts[w] <= idx_) ++w;
    const unsigned read_phase = static_cast<unsigned>(2 * w);
    if (phase < read_phase) return act;  // idle, not yet my wave
    if (phase == read_phase) {
      const std::uint64_t holders = L.counts[w - 1];
      const std::uint64_t t = idx_ - holders;  // my index within the wave
      act.reads.push_back(L.dst + (t % holders));
      return act;
    }
    act.writes.emplace_back(L.dst + idx_, inbox.empty() ? 0 : inbox[0]);
    act.halt = true;
    return act;
  }

 private:
  std::shared_ptr<const CastLayout> layout_;
  std::uint64_t idx_;
};

}  // namespace

Addr spmd_parity_tree(QsmMachine& m, Addr in, std::uint64_t n,
                      unsigned fanin) {
  if (fanin < 2) throw std::invalid_argument("spmd_parity_tree: fanin >= 2");
  if (n <= 1) return in;
  auto layout = std::make_shared<TreeLayout>();
  layout->fanin = fanin;
  layout->level_base.push_back(in);
  layout->level_len.push_back(n);
  std::uint64_t len = n;
  while (len > 1) {
    len = ceil_div(len, fanin);
    layout->level_base.push_back(m.alloc(len));
    layout->level_len.push_back(len);
  }
  std::vector<std::unique_ptr<SpmdProcessor>> procs;
  const std::uint64_t blocks0 = layout->level_len[1];
  for (std::uint64_t b = 0; b < blocks0; ++b)
    procs.push_back(std::make_unique<TreeNodeProc>(layout, b));
  run_spmd(m, procs);
  return layout->level_base.back();
}

void spmd_broadcast(QsmMachine& m, Addr src, Addr dst, std::uint64_t n,
                    std::uint64_t fanout) {
  if (n == 0) return;
  if (fanout < 2) throw std::invalid_argument("spmd_broadcast: fanout >= 2");
  auto layout = std::make_shared<CastLayout>();
  layout->src = src;
  layout->dst = dst;
  layout->n = n;
  layout->fanout = fanout;
  std::uint64_t count = 1;
  layout->counts.push_back(1);
  while (count < n) {
    count = std::min<std::uint64_t>(n, count + count * (fanout - 1));
    layout->counts.push_back(count);
  }
  std::vector<std::unique_ptr<SpmdProcessor>> procs;
  for (std::uint64_t i = 0; i < n; ++i)
    procs.push_back(std::make_unique<CastProc>(layout, i));
  run_spmd(m, procs);
}

}  // namespace parbounds
