#pragma once
// A CRCW PRAM — the traditional model the paper positions itself
// against ("There are a large number of lower bound results known for
// computation on the traditional PRAM models", Section 1; the QRQW rule
// is "intermediate between the EREW and CRCW rules").
//
// Differences from the QSM engine:
//  * unit-cost synchronous steps: any number of processors may read or
//    write one cell in a step, and a step costs max(1, m_op);
//  * reads and writes may even target the same cell in one step — reads
//    see the pre-step value (standard CRCW semantics);
//  * concurrent writes resolve by a selectable rule:
//      Common   — all writers must agree, else ModelViolation (the
//                 strictest classic rule);
//      Arbitrary— any writer succeeds (we keep the last queued);
//      Priority — the lowest processor id wins.
//
// This machine powers the PRAM-vs-queuing comparison bench: the same
// problem costs Theta(1) (OR) or Theta(log n / loglog n) (parity,
// Beame-Hastad-tight) here, versus the Table 1 bounds once contention
// and bandwidth are charged.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/observer.hpp"
#include "core/qsm.hpp"  // ModelViolation
#include "core/storage.hpp"
#include "core/trace.hpp"

namespace parbounds {

enum class CrcwWriteRule : std::uint8_t { Common, Arbitrary, Priority };

struct CrcwConfig {
  CrcwWriteRule rule = CrcwWriteRule::Arbitrary;
  /// Flat-arena span of shared memory; 0 = map-only reference path.
  std::uint64_t mem_dense_limit = CellStore<Word>::kDefaultDenseLimit;
};

class CrcwMachine {
 public:
  explicit CrcwMachine(CrcwConfig cfg = {});

  Addr alloc(std::uint64_t n);
  void preload(Addr base, std::span<const Word> values);
  void preload(Addr addr, Word value);

  void begin_step();
  void read(ProcId p, Addr a);
  void write(ProcId p, Addr a, Word v);
  void local(ProcId p, std::uint64_t ops = 1);
  const PhaseTrace& commit_step();

  std::span<const Word> inbox(ProcId p) const;

  std::uint64_t time() const { return time_; }
  std::uint64_t steps() const { return trace_.phases.size(); }
  const ExecutionTrace& trace() const { return trace_; }
  Word peek(Addr a) const;

  /// Optional analysis hook, invoked after every commit_step.
  void set_observer(AnalysisObserver* obs) { observer_ = obs; }

 private:
  struct ReadReq {
    ProcId proc;
    Addr addr;
  };
  struct WriteReq {
    ProcId proc;
    Addr addr;
    Word value;
  };

  CrcwConfig cfg_;
  CellStore<Word> mem_;
  Addr next_base_ = 0;
  bool in_step_ = false;
  std::uint64_t time_ = 0;
  ExecutionTrace trace_;
  AnalysisObserver* observer_ = nullptr;

  std::vector<ReadReq> reads_;
  std::vector<WriteReq> writes_;
  std::vector<std::pair<ProcId, std::uint64_t>> locals_;
  InboxTable<std::vector<Word>> inboxes_;

  // Reusable accounting scratch for commit_step.
  detail::KeyHistogram proc_hist_{detail::kProcHistogramLimit};
  detail::KeyHistogram addr_hist_{detail::kAddrHistogramLimit};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> local_scratch_;
  std::vector<std::pair<Addr, std::uint32_t>> wgroup_scratch_;

  // Sharded counterparts for large steps (see phase_scan.hpp).
  detail::ShardedScan sproc_{detail::kProcHistogramLimit};
  detail::ShardedScan sraddr_{detail::kAddrHistogramLimit};
  detail::ShardedScan swaddr_{detail::kAddrHistogramLimit};

  static const std::vector<Word> kEmptyInbox;
};

}  // namespace parbounds
