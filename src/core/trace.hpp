#pragma once
// Execution traces.
//
// Every machine in parbounds appends one PhaseTrace per committed phase /
// superstep. Traces serve three consumers:
//
//  * the Claim 2.1 mapping executors (core/mapping.*), which replay a
//    recorded shared-memory or BSP execution on a GSM and compare costs;
//  * the round auditor (core/rounds.*), which checks the Section 2.3
//    definitions of a "round" phase by phase;
//  * the Random Adversary trace analysis (adversary/trace_analysis.*),
//    which needs full per-event detail and therefore turns on
//    `detail` recording for its (small) runs.

#include <cstdint>
#include <vector>

#include "core/cost.hpp"

namespace parbounds {

using ProcId = std::uint64_t;
using Addr = std::uint64_t;
using Word = std::int64_t;

/// One recorded memory event (detail mode only).
struct MemEvent {
  ProcId proc = 0;
  Addr addr = 0;
  Word value = 0;  ///< written value, or value delivered by the read
  bool is_write = false;
};

/// Summary of one committed phase or superstep.
struct PhaseTrace {
  PhaseStats stats;            ///< raw quantities (m_op, m_rw, kappa, ...)
  std::uint64_t cost = 0;      ///< charged cost under the machine's policy
  std::uint64_t h = 0;         ///< BSP only: the routed h-relation
  /// Shards the commit scan ran over (0 = serial path). Implementation
  /// telemetry, not a model quantity: stats and cost are bit-identical
  /// either way, so trace_io deliberately leaves these out of the CSV.
  std::uint32_t commit_shards = 0;
  std::uint64_t commit_merge_ns = 0;  ///< wall-clock of the shard merges
  std::vector<MemEvent> events;  ///< populated only in detail mode
};

/// A full execution: machine-kind tag plus the per-phase sequence.
struct ExecutionTrace {
  enum class Kind : std::uint8_t { Qsm, SQsm, Bsp, Gsm, QsmGd } kind =
      Kind::Qsm;
  std::uint64_t g = 1;
  std::uint64_t d = 1;  ///< QSM(g,d) only
  std::uint64_t L = 0;  ///< BSP only
  std::vector<PhaseTrace> phases;

  std::uint64_t total_cost() const {
    std::uint64_t t = 0;
    for (const auto& ph : phases) t += ph.cost;
    return t;
  }
  std::uint64_t total_work(std::uint64_t p) const { return total_cost() * p; }
};

}  // namespace parbounds
