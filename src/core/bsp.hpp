#pragma once
// The Bulk-Synchronous Parallel machine, Section 2.1 (3) [Valiant 1990].
//
// p processor/memory components communicate by point-to-point messages.
// A computation is a sequence of supersteps; within a superstep each
// processor does local work and sends/receives messages; all messages sent
// in a superstep arrive before the next superstep starts. With
//   w = max_i w_i   (local work),
//   h = max_i max(s_i, r_i)  (the h-relation routed),
// the superstep costs max(w, g*h, L). The paper assumes L >= g throughout;
// the constructor enforces that.
//
// Driver protocol mirrors QsmMachine:
//
//   BspMachine m({.p = 64, .g = 2, .L = 16});
//   m.begin_superstep();
//   m.send(src, dst, value);
//   m.local(src, ops);
//   m.commit_superstep();
//   ... m.inbox(dst) ...   // Messages delivered, visible from now on.
//
// The input of size n is partitioned uniformly: component i holds either
// ceil(n/p) or floor(n/p) inputs (block distribution, helper below).

#include <cstdint>
#include <span>
#include <vector>

#include "core/cost.hpp"
#include "core/observer.hpp"
#include "core/phase_scan.hpp"
#include "core/qsm.hpp"  // for ModelViolation
#include "core/trace.hpp"

namespace parbounds {

struct BspConfig {
  std::uint64_t p = 1;   ///< number of components
  std::uint64_t g = 1;   ///< bandwidth parameter
  std::uint64_t L = 1;   ///< latency / synchronization parameter (L >= g)
  bool record_detail = false;
};

struct Message {
  ProcId source = 0;
  Word value = 0;
  Word tag = 0;  ///< optional small header chosen by the sender
};

class BspMachine {
 public:
  explicit BspMachine(BspConfig cfg);

  std::uint64_t p() const { return cfg_.p; }
  std::uint64_t g() const { return cfg_.g; }
  std::uint64_t L() const { return cfg_.L; }

  // ----- superstep protocol ---------------------------------------------
  void begin_superstep();
  void send(ProcId src, ProcId dst, Word value, Word tag = 0);
  void local(ProcId proc, std::uint64_t ops = 1);
  const PhaseTrace& commit_superstep();

  /// Messages received by `proc` in the last committed superstep.
  std::span<const Message> inbox(ProcId proc) const;

  // ----- accounting -----------------------------------------------------
  std::uint64_t time() const { return time_; }
  std::uint64_t supersteps() const { return trace_.phases.size(); }
  const ExecutionTrace& trace() const { return trace_; }

  /// Optional analysis hook, invoked after every commit_superstep.
  void set_observer(AnalysisObserver* obs) { observer_ = obs; }

  // ----- input partitioning (Section 2.1 (3)) -----------------------------
  /// Block distribution: inputs [lo, hi) assigned to component i when an
  /// n-element input is split over p components, |piece| in
  /// {floor(n/p), ceil(n/p)}.
  static std::pair<std::uint64_t, std::uint64_t> block_range(
      std::uint64_t n, std::uint64_t p, std::uint64_t i);

 private:
  struct SendReq {
    ProcId src;
    ProcId dst;
    Message msg;
  };

  BspConfig cfg_;
  bool in_step_ = false;
  std::uint64_t time_ = 0;
  ExecutionTrace trace_;
  AnalysisObserver* observer_ = nullptr;

  std::vector<SendReq> sends_;
  std::vector<std::pair<ProcId, std::uint64_t>> locals_;
  std::vector<std::vector<Message>> inboxes_;

  // Dense per-processor counters (p is fixed at construction). They are
  // zero between supersteps: commit_superstep re-zeroes exactly the
  // entries it touched, so accounting is O(#requests), not O(p).
  std::vector<std::uint64_t> send_cnt_;
  std::vector<std::uint64_t> recv_cnt_;
  std::vector<std::uint64_t> work_cnt_;

  // Sharded counterparts for large supersteps (see phase_scan.hpp).
  detail::ShardedScan ssrc_{detail::kProcHistogramLimit};
  detail::ShardedScan sdst_{detail::kProcHistogramLimit};
};

}  // namespace parbounds
