#include "core/trace_io.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace parbounds {

namespace {

const char* kind_name(ExecutionTrace::Kind k) {
  switch (k) {
    case ExecutionTrace::Kind::Qsm:
      return "QSM";
    case ExecutionTrace::Kind::SQsm:
      return "s-QSM";
    case ExecutionTrace::Kind::Bsp:
      return "BSP";
    case ExecutionTrace::Kind::Gsm:
      return "GSM";
    case ExecutionTrace::Kind::QsmGd:
      return "QSM(g,d)";
  }
  return "?";
}

ExecutionTrace::Kind kind_from(const std::string& s) {
  if (s == "QSM") return ExecutionTrace::Kind::Qsm;
  if (s == "s-QSM") return ExecutionTrace::Kind::SQsm;
  if (s == "BSP") return ExecutionTrace::Kind::Bsp;
  if (s == "GSM") return ExecutionTrace::Kind::Gsm;
  if (s == "QSM(g,d)") return ExecutionTrace::Kind::QsmGd;
  throw std::invalid_argument("unknown trace kind: " + s);
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : line) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::uint64_t to_u64(const std::string& s) {
  return std::stoull(s);
}

Word to_word(const std::string& s) { return std::stoll(s); }

constexpr const char* kEventHeader = "event_phase,proc,addr,value,is_write";

}  // namespace

void write_trace_csv(std::ostream& os, const ExecutionTrace& t) {
  os << "kind,g,d,L,phases,total_cost\n";
  os << kind_name(t.kind) << ',' << t.g << ',' << t.d << ',' << t.L << ','
     << t.phases.size() << ',' << t.total_cost() << '\n';
  os << "phase,cost,m_op,m_rw,kappa_r,kappa_w,h,reads,writes,ops\n";
  for (std::size_t i = 0; i < t.phases.size(); ++i) {
    const auto& ph = t.phases[i];
    os << i + 1 << ',' << ph.cost << ',' << ph.stats.m_op << ','
       << ph.stats.m_rw << ',' << ph.stats.kappa_r << ','
       << ph.stats.kappa_w << ',' << ph.h << ',' << ph.stats.reads << ','
       << ph.stats.writes << ',' << ph.stats.ops << '\n';
  }
  bool any_events = false;
  for (const auto& ph : t.phases) any_events |= !ph.events.empty();
  if (!any_events) return;
  os << kEventHeader << '\n';
  for (std::size_t i = 0; i < t.phases.size(); ++i)
    for (const auto& e : t.phases[i].events)
      os << i + 1 << ',' << e.proc << ',' << e.addr << ',' << e.value << ','
         << (e.is_write ? 1 : 0) << '\n';
}

std::string trace_to_csv(const ExecutionTrace& t) {
  std::ostringstream os;
  write_trace_csv(os, t);
  return os.str();
}

std::string trace_summary(const ExecutionTrace& t) {
  std::uint64_t worst = 0;
  for (const auto& ph : t.phases) worst = std::max(worst, ph.cost);
  std::ostringstream os;
  os << kind_name(t.kind) << " g=" << t.g;
  if (t.kind == ExecutionTrace::Kind::QsmGd) os << " d=" << t.d;
  if (t.kind == ExecutionTrace::Kind::Bsp) os << " L=" << t.L;
  os << ": " << t.phases.size() << " phases, cost " << t.total_cost()
     << " (max phase " << worst << ")";
  return os.str();
}

ExecutionTrace trace_from_csv(const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  auto next_line = [&]() {
    if (!std::getline(is, line))
      throw std::invalid_argument("trace csv truncated");
    return line;
  };
  if (next_line() != "kind,g,d,L,phases,total_cost")
    throw std::invalid_argument("trace csv: bad header");
  const auto meta = split(next_line(), ',');
  if (meta.size() != 6) throw std::invalid_argument("trace csv: bad meta");
  ExecutionTrace t;
  t.kind = kind_from(meta[0]);
  t.g = to_u64(meta[1]);
  t.d = to_u64(meta[2]);
  t.L = to_u64(meta[3]);
  const std::uint64_t phases = to_u64(meta[4]);
  if (next_line() != "phase,cost,m_op,m_rw,kappa_r,kappa_w,h,reads,writes,ops")
    throw std::invalid_argument("trace csv: bad phase header");
  for (std::uint64_t i = 0; i < phases; ++i) {
    const auto f = split(next_line(), ',');
    if (f.size() != 10) throw std::invalid_argument("trace csv: bad row");
    PhaseTrace ph;
    ph.cost = to_u64(f[1]);
    ph.stats.m_op = to_u64(f[2]);
    ph.stats.m_rw = to_u64(f[3]);
    ph.stats.kappa_r = to_u64(f[4]);
    ph.stats.kappa_w = to_u64(f[5]);
    ph.h = to_u64(f[6]);
    ph.stats.reads = to_u64(f[7]);
    ph.stats.writes = to_u64(f[8]);
    ph.stats.ops = to_u64(f[9]);
    t.phases.push_back(ph);
  }
  // Optional events section.
  if (!std::getline(is, line)) return t;
  if (line != kEventHeader)
    throw std::invalid_argument("trace csv: bad events header");
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto f = split(line, ',');
    if (f.size() != 5) throw std::invalid_argument("trace csv: bad event row");
    const std::uint64_t phase = to_u64(f[0]);
    if (phase == 0 || phase > t.phases.size())
      throw std::invalid_argument("trace csv: event phase out of range");
    MemEvent e;
    e.proc = to_u64(f[1]);
    e.addr = to_u64(f[2]);
    e.value = to_word(f[3]);
    e.is_write = to_u64(f[4]) != 0;
    t.phases[phase - 1].events.push_back(e);
  }
  return t;
}

}  // namespace parbounds
