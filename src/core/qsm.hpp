#pragma once
// The Queuing Shared Memory machine (QSM / s-QSM / QRQW), Section 2.1.
//
// The machine is driven imperatively, one bulk-synchronous phase at a time:
//
//   QsmMachine m({.g = 4});
//   m.begin_phase();
//   m.read(p, a);            // processor p requests the contents of cell a
//   m.write(p, b, v);        // processor p writes v to cell b
//   m.local(p, c);           // processor p performs c local RAM operations
//   m.commit_phase();        // validate, charge cost, apply writes
//   ... m.inbox(p) ...       // values read by p, visible from NOW on
//
// Semantics enforced by the engine (all from Section 2.1):
//  * The value returned by a read is the cell's contents at the *start* of
//    the phase, and is delivered only at commit — a driver physically
//    cannot use it within the same phase.
//  * Concurrent reads or writes (but not both) to one location per phase;
//    a read+write mix at a location throws ModelViolation.
//  * Multiple writers to one location: an arbitrary write succeeds. The
//    engine resolves either LastQueued (deterministic) or Random (seeded).
//  * Phase cost = max(m_op, g*m_rw, kappa) under CostModel::Qsm, with the
//    s-QSM / concurrent-read variants in core/cost.hpp.
//
// Shared memory is sparse (unbounded address space, cells default to 0);
// `alloc` hands out disjoint regions so drivers never collide.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/cost.hpp"
#include "core/observer.hpp"
#include "core/phase_scan.hpp"
#include "core/storage.hpp"
#include "core/trace.hpp"
#include "util/rng.hpp"

namespace parbounds {

/// Thrown when a driver violates the memory-access rules of the model.
class ModelViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

enum class WriteResolution : std::uint8_t { LastQueued, Random };

struct QsmConfig {
  std::uint64_t g = 1;                       ///< gap parameter
  std::uint64_t d = 1;                       ///< memory gap (QsmGd only)
  CostModel model = CostModel::Qsm;          ///< cost policy
  WriteResolution writes = WriteResolution::LastQueued;
  std::uint64_t seed = 1;                    ///< for Random write resolution
  bool record_detail = false;                ///< store MemEvents per phase
  /// Addresses below this live in the flat memory arena; higher ones in
  /// the sparse fallback map. 0 disables the arena (map-only reference
  /// path, used by the equivalence tests).
  std::uint64_t mem_dense_limit = CellStore<Word>::kDefaultDenseLimit;
};

class QsmMachine {
 public:
  explicit QsmMachine(QsmConfig cfg = {});

  // ----- memory layout ------------------------------------------------
  /// Reserve a region of `n` fresh cells; returns its base address.
  Addr alloc(std::uint64_t n);

  /// Bulk-store values (no cost charged: models assume the input is
  /// already resident in shared memory at time 0).
  void preload(Addr base, std::span<const Word> values);
  void preload(Addr addr, Word value);

  // ----- phase protocol -------------------------------------------------
  void begin_phase();
  void read(ProcId p, Addr a);
  void write(ProcId p, Addr a, Word v);
  void local(ProcId p, std::uint64_t ops = 1);
  /// Validate the phase, charge its cost, apply writes, deliver reads.
  const PhaseTrace& commit_phase();

  /// Values delivered to processor p by its reads in the last committed
  /// phase, in the order the reads were issued.
  std::span<const Word> inbox(ProcId p) const;

  // ----- accounting -----------------------------------------------------
  std::uint64_t time() const { return time_; }
  std::uint64_t phases() const { return trace_.phases.size(); }
  const ExecutionTrace& trace() const { return trace_; }
  const QsmConfig& config() const { return cfg_; }

  /// Out-of-band inspection for tests and result extraction (not charged).
  Word peek(Addr a) const;

  /// Optional analysis hook, invoked after every commit_phase. Pass
  /// nullptr to detach. The observer must outlive the machine's use.
  void set_observer(AnalysisObserver* obs) { observer_ = obs; }

 private:
  struct ReadReq {
    ProcId proc;
    Addr addr;
  };
  struct WriteReq {
    ProcId proc;
    Addr addr;
    Word value;
  };
  struct LocalReq {
    ProcId proc;
    std::uint64_t ops;
  };

  QsmConfig cfg_;
  Rng rng_;
  CellStore<Word> mem_;
  Addr next_base_ = 0;
  bool in_phase_ = false;
  std::uint64_t time_ = 0;
  ExecutionTrace trace_;
  AnalysisObserver* observer_ = nullptr;

  std::vector<ReadReq> reads_;
  std::vector<WriteReq> writes_;
  std::vector<LocalReq> locals_;
  InboxTable<std::vector<Word>> inboxes_;

  // Reusable accounting scratch for commit_phase (counters and buffer
  // capacity persist across phases; a steady-state commit performs no
  // allocation).
  detail::KeyHistogram proc_hist_{detail::kProcHistogramLimit};
  detail::KeyHistogram raddr_hist_{detail::kAddrHistogramLimit};
  detail::KeyHistogram waddr_hist_{detail::kAddrHistogramLimit};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> local_scratch_;
  std::vector<std::pair<Addr, std::uint32_t>> wgroup_scratch_;

  // Sharded counterparts, used when the phase holds at least
  // commit_shard_min_requests() requests; aggregates are bit-identical
  // to the serial histograms (see phase_scan.hpp).
  detail::ShardedScan sproc_r_{detail::kProcHistogramLimit};
  detail::ShardedScan sproc_w_{detail::kProcHistogramLimit};
  detail::ShardedScan sraddr_{detail::kAddrHistogramLimit};
  detail::ShardedScan swaddr_{detail::kAddrHistogramLimit};

  static const std::vector<Word> kEmptyInbox;
};

}  // namespace parbounds
