#pragma once
// Phase accounting over flat scratch buffers, shared by the four engines.
//
// A committing phase needs four aggregates over its request buffers:
// per-processor maxima (m_op, m_rw), per-cell maxima (kappa_r, kappa_w),
// and the queue-rule check that no cell is both read and written. The
// engines used to build four `unordered_map`s per phase for this. Two
// replacements live here:
//
//  * KeyHistogram — a dense counter array for small keys (processor ids,
//    arena addresses) with an O(touched) reset and a sorted-spill
//    fallback for keys above the dense limit. Multiplicity maxima and
//    membership probes are O(1) per request, and the counters persist
//    across phases, so a steady-state commit allocates nothing and
//    never pays O(key-space).
//  * sort_max_run / sort_max_run_sum / first_common — sorted-run
//    scanning over reusable key buffers, used for the spill path, for
//    weighted local-op accounting, and for the ascending-address write
//    groups of the QSM Random and CRCW resolution rules.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace parbounds::detail {

/// Sort `keys` ascending in place and return the length of the longest
/// run of equal keys (0 when empty). One sorted pass replaces a
/// count-map: the multiplicity of a key is the length of its run.
inline std::uint64_t sort_max_run(std::vector<std::uint64_t>& keys) {
  if (keys.empty()) return 0;
  std::sort(keys.begin(), keys.end());
  std::uint64_t best = 0, run = 0;
  std::uint64_t prev = keys.front();
  for (const std::uint64_t k : keys) {
    if (k == prev) {
      ++run;
    } else {
      best = std::max(best, run);
      prev = k;
      run = 1;
    }
  }
  return std::max(best, run);
}

struct RunSum {
  std::uint64_t max_run = 0;  ///< largest per-key weight sum
  std::uint64_t total = 0;    ///< sum of all weights
};

/// Sort (key, weight) pairs by key and return the largest per-key weight
/// sum together with the grand total. Used for local-op accounting where
/// one request carries a weight > 1.
inline RunSum sort_max_run_sum(
    std::vector<std::pair<std::uint64_t, std::uint64_t>>& kv) {
  RunSum out;
  if (kv.empty()) return out;
  std::sort(kv.begin(), kv.end());
  std::uint64_t prev = kv.front().first;
  std::uint64_t run = 0;
  for (const auto& [k, w] : kv) {
    if (k != prev) {
      out.max_run = std::max(out.max_run, run);
      prev = k;
      run = 0;
    }
    run += w;
    out.total += w;
  }
  out.max_run = std::max(out.max_run, run);
  return out;
}

/// First value present in both ascending-sorted vectors, or nullopt.
/// Replaces the map-membership probe in the read-xor-write queue rule;
/// "first" means smallest, which makes the violation deterministic.
inline std::optional<std::uint64_t> first_common(
    const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j])
      ++i;
    else if (b[j] < a[i])
      ++j;
    else
      return a[i];
  }
  return std::nullopt;
}

/// Reusable multiplicity counter over integer keys. Keys below the dense
/// limit are counted in a flat array that grows geometrically to the
/// largest key seen (never beyond the limit); keys at or above it spill
/// into a vector that is sorted on demand. reset() zeroes only the slots
/// the previous round touched.
///
/// Counts are 32-bit: a phase holding 2^32 requests for one key would
/// exceed memory in the request buffers long before the counter wraps.
class KeyHistogram {
 public:
  explicit KeyHistogram(std::uint64_t dense_limit)
      : dense_limit_(dense_limit) {}

  /// Count one occurrence of `key`.
  void add(std::uint64_t key) {
    if (key >= dense_limit_) {
      spill_.push_back(key);
      return;
    }
    if (key >= cnt_.size())
      cnt_.resize(std::min(std::max(key + 1, cnt_.size() * 2), dense_limit_));
    const std::uint32_t c = ++cnt_[key];
    if (c == 1) touched_.push_back(key);
    dense_max_ = std::max<std::uint64_t>(dense_max_, c);
  }

  /// Multiplicity of a dense key so far this round (always 0 for spilled
  /// keys — probe the sorted spill() for those).
  std::uint64_t count(std::uint64_t key) const {
    return (key < cnt_.size()) ? cnt_[key] : 0;
  }

  /// Max multiplicity over all keys. Sorts the spill, so call it after
  /// the round's add() calls.
  std::uint64_t max_run() {
    return std::max(dense_max_, sort_max_run(spill_));
  }

  /// Spilled (>= dense_limit) keys; ascending once max_run() has run.
  const std::vector<std::uint64_t>& spill() const { return spill_; }

  /// Forget this round: zero the touched dense slots, drop the spill.
  /// Cost is O(distinct keys added), independent of the key space.
  void reset() {
    for (const std::uint64_t k : touched_) cnt_[k] = 0;
    touched_.clear();
    spill_.clear();
    dense_max_ = 0;
  }

 private:
  std::uint64_t dense_limit_;
  std::vector<std::uint32_t> cnt_;
  std::vector<std::uint64_t> touched_;
  std::vector<std::uint64_t> spill_;
  std::uint64_t dense_max_ = 0;
};

/// Dense-key bound for processor ids (matches InboxTable::kDenseLimit).
inline constexpr std::uint64_t kProcHistogramLimit = std::uint64_t{1} << 20;
/// Dense-key bound for cell addresses (matches the CellStore default).
inline constexpr std::uint64_t kAddrHistogramLimit = std::uint64_t{1} << 22;

}  // namespace parbounds::detail
