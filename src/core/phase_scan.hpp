#pragma once
// Phase accounting over flat scratch buffers, shared by the four engines.
//
// A committing phase needs four aggregates over its request buffers:
// per-processor maxima (m_op, m_rw), per-cell maxima (kappa_r, kappa_w),
// and the queue-rule check that no cell is both read and written. The
// engines used to build four `unordered_map`s per phase for this. Two
// replacements live here:
//
//  * KeyHistogram — a dense counter array for small keys (processor ids,
//    arena addresses) with an O(touched) reset and a sorted-spill
//    fallback for keys above the dense limit. Multiplicity maxima and
//    membership probes are O(1) per request, and the counters persist
//    across phases, so a steady-state commit allocates nothing and
//    never pays O(key-space).
//  * sort_max_run / sort_max_run_sum / first_common — sorted-run
//    scanning over reusable key buffers, used for the spill path, for
//    weighted local-op accounting, and for the ascending-address write
//    groups of the QSM Random and CRCW resolution rules.

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "obs/span.hpp"
#include "runtime/parallel_for.hpp"

namespace parbounds::detail {

/// Sort `keys` ascending in place and return the length of the longest
/// run of equal keys (0 when empty). One sorted pass replaces a
/// count-map: the multiplicity of a key is the length of its run.
inline std::uint64_t sort_max_run(std::vector<std::uint64_t>& keys) {
  if (keys.empty()) return 0;
  std::sort(keys.begin(), keys.end());
  std::uint64_t best = 0, run = 0;
  std::uint64_t prev = keys.front();
  for (const std::uint64_t k : keys) {
    if (k == prev) {
      ++run;
    } else {
      best = std::max(best, run);
      prev = k;
      run = 1;
    }
  }
  return std::max(best, run);
}

struct RunSum {
  std::uint64_t max_run = 0;  ///< largest per-key weight sum
  std::uint64_t total = 0;    ///< sum of all weights
};

/// Sort (key, weight) pairs by key and return the largest per-key weight
/// sum together with the grand total. Used for local-op accounting where
/// one request carries a weight > 1.
inline RunSum sort_max_run_sum(
    std::vector<std::pair<std::uint64_t, std::uint64_t>>& kv) {
  RunSum out;
  if (kv.empty()) return out;
  std::sort(kv.begin(), kv.end());
  std::uint64_t prev = kv.front().first;
  std::uint64_t run = 0;
  for (const auto& [k, w] : kv) {
    if (k != prev) {
      out.max_run = std::max(out.max_run, run);
      prev = k;
      run = 0;
    }
    run += w;
    out.total += w;
  }
  out.max_run = std::max(out.max_run, run);
  return out;
}

/// First value present in both ascending-sorted vectors, or nullopt.
/// Replaces the map-membership probe in the read-xor-write queue rule;
/// "first" means smallest, which makes the violation deterministic.
inline std::optional<std::uint64_t> first_common(
    const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j])
      ++i;
    else if (b[j] < a[i])
      ++j;
    else
      return a[i];
  }
  return std::nullopt;
}

/// Reusable multiplicity counter over integer keys. Keys below the dense
/// limit are counted in a flat array that grows geometrically to the
/// largest key seen (never beyond the limit); keys at or above it spill
/// into a vector that is sorted on demand. reset() zeroes only the slots
/// the previous round touched.
///
/// Counts are 32-bit: a phase holding 2^32 requests for one key would
/// exceed memory in the request buffers long before the counter wraps.
class KeyHistogram {
 public:
  explicit KeyHistogram(std::uint64_t dense_limit)
      : dense_limit_(dense_limit) {}

  /// Count one occurrence of `key`.
  void add(std::uint64_t key) {
    if (key >= dense_limit_) {
      spill_.push_back(key);
      return;
    }
    if (key >= cnt_.size())
      cnt_.resize(std::min(std::max(key + 1, cnt_.size() * 2), dense_limit_));
    const std::uint32_t c = ++cnt_[key];
    if (c == 1) touched_.push_back(key);
    dense_max_ = std::max<std::uint64_t>(dense_max_, c);
  }

  /// Multiplicity of a dense key so far this round (always 0 for spilled
  /// keys — probe the sorted spill() for those).
  std::uint64_t count(std::uint64_t key) const {
    return (key < cnt_.size()) ? cnt_[key] : 0;
  }

  /// Extent of the dense counter array (largest key counted is below
  /// this). Lets ShardedScan bound its key-range aggregation passes.
  std::uint64_t dense_size() const { return cnt_.size(); }

  /// Max multiplicity over all keys. Sorts the spill, so call it after
  /// the round's add() calls.
  std::uint64_t max_run() {
    return std::max(dense_max_, sort_max_run(spill_));
  }

  /// Spilled (>= dense_limit) keys; ascending once max_run() has run.
  const std::vector<std::uint64_t>& spill() const { return spill_; }

  /// Forget this round: zero the touched dense slots, drop the spill.
  /// Cost is O(distinct keys added), independent of the key space.
  void reset() {
    for (const std::uint64_t k : touched_) cnt_[k] = 0;
    touched_.clear();
    spill_.clear();
    dense_max_ = 0;
  }

 private:
  std::uint64_t dense_limit_;
  std::vector<std::uint32_t> cnt_;
  std::vector<std::uint64_t> touched_;
  std::vector<std::uint64_t> spill_;
  std::uint64_t dense_max_ = 0;
};

/// Dense-key bound for processor ids (matches InboxTable::kDenseLimit).
inline constexpr std::uint64_t kProcHistogramLimit = std::uint64_t{1} << 20;
/// Dense-key bound for cell addresses (matches the CellStore default).
inline constexpr std::uint64_t kAddrHistogramLimit = std::uint64_t{1} << 22;

/// Shard count of every sharded commit scan. A fixed constant (not a
/// thread-count function) so the request-slice boundaries — and with
/// them every per-shard histogram — are identical in every pool
/// configuration.
inline constexpr unsigned kCommitShards = 8;

/// Request-count floor below which a commit takes the serial scan path;
/// at or above it the sharded path runs (at any thread count — with one
/// thread the shards execute inline over the same boundaries, so the
/// two paths are exercised by size, not by pool size). Mutable so tests
/// and the bench_hotpath oracle can force either path; written only
/// between runs, never during a commit.
inline std::uint64_t& commit_shard_min_requests() {
  static std::uint64_t v = std::uint64_t{1} << 16;
  return v;
}

/// Sharded multiplicity counting: the parallel counterpart of one
/// KeyHistogram pass. scan() slices the request index range [0, n) at
/// the fixed kCommitShards boundaries and counts each slice into a
/// private KeyHistogram; the aggregates then *merge* the shards with
/// commutative operations only —
///
///   * per-key totals are the SUM of the per-shard counts (addition is
///     commutative, so the total never depends on which worker counted
///     which slice);
///   * max_run() is the MAX over keys of those sums (dense keys via a
///     key-range partitioned parallel pass, spilled keys via the sorted
///     concatenation of the per-shard spill vectors);
///   * min_common() is the MIN key counted by both of two scans (the
///     queue-rule clash), again over summed counts.
///
/// Every aggregate is therefore bit-identical to the serial
/// KeyHistogram result at any thread count. The per-shard histograms
/// persist across phases exactly like the serial ones (reset is
/// O(touched)).
class ShardedScan {
 public:
  explicit ShardedScan(std::uint64_t dense_limit)
      : dense_limit_(dense_limit) {}

  /// Count key(i) for every i in [0, n) across kCommitShards private
  /// histograms. KeyFn must be safe to call concurrently (a pure read
  /// of the request buffers).
  template <class KeyFn>
  void scan(std::uint64_t n, KeyFn&& key) {
    if (shards_.empty())
      shards_.assign(kCommitShards, KeyHistogram(dense_limit_));
    for (auto& h : shards_) h.reset();
    spill_all_.clear();
    spill_sorted_ = false;
    auto& pool = runtime::ParallelFor::pool();
    pool.for_shards(n, kCommitShards,
                    [&](unsigned s, std::uint64_t lo, std::uint64_t hi) {
                      obs::Span span(obs::process_tracer(), "commit.shard", s);
                      KeyHistogram& h = shards_[s];
                      for (std::uint64_t i = lo; i < hi; ++i) h.add(key(i));
                    });
  }

  /// Max over all keys of the summed multiplicity. Runs one key-range
  /// partitioned parallel pass over the dense arrays (partition bounds
  /// derive from the data extent, not the thread count) plus a sorted
  /// pass over the concatenated spills.
  std::uint64_t max_run() {
    const std::uint64_t extent = dense_extent();
    std::uint64_t best = 0;
    if (extent > 0) {
      const unsigned parts = runtime::ParallelFor::shard_count(
          extent, std::uint64_t{1} << 15, kCommitShards);
      std::array<std::uint64_t, kCommitShards> part_max{};
      runtime::ParallelFor::pool().for_shards(
          extent, parts, [&](unsigned s, std::uint64_t lo, std::uint64_t hi) {
            std::uint64_t m = 0;
            for (std::uint64_t k = lo; k < hi; ++k) {
              std::uint64_t tot = 0;
              for (const auto& h : shards_) tot += h.count(k);
              m = std::max(m, tot);
            }
            part_max[s] = m;
          });
      for (unsigned s = 0; s < parts; ++s) best = std::max(best, part_max[s]);
    }
    sort_spill();
    return std::max(best, sort_max_run(spill_all_));
  }

  /// Smallest key counted by both scans, or nullopt — the read-xor-write
  /// queue-rule clash, identical to the serial probe-plus-spill result.
  static std::optional<std::uint64_t> min_common(ShardedScan& reads,
                                                 ShardedScan& writes) {
    std::optional<std::uint64_t> clash;
    const std::uint64_t extent =
        std::min(reads.dense_extent(), writes.dense_extent());
    if (extent > 0) {
      const unsigned parts = runtime::ParallelFor::shard_count(
          extent, std::uint64_t{1} << 15, kCommitShards);
      std::array<std::optional<std::uint64_t>, kCommitShards> part_min{};
      runtime::ParallelFor::pool().for_shards(
          extent, parts, [&](unsigned s, std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t k = lo; k < hi; ++k) {
              std::uint64_t r = 0, w = 0;
              for (const auto& h : reads.shards_) r += h.count(k);
              if (r == 0) continue;
              for (const auto& h : writes.shards_) w += h.count(k);
              if (w == 0) continue;
              part_min[s] = k;  // first hit in an ascending range = min
              return;
            }
          });
      for (unsigned s = 0; s < parts; ++s)
        if (part_min[s] && (!clash || *part_min[s] < *clash))
          clash = part_min[s];
    }
    reads.sort_spill();
    writes.sort_spill();
    if (const auto sp = first_common(reads.spill_all_, writes.spill_all_))
      if (!clash || *sp < *clash) clash = *sp;
    return clash;
  }

  /// Upper bound (exclusive) on the dense keys counted this round.
  std::uint64_t dense_extent() const {
    std::uint64_t e = 0;
    for (const auto& h : shards_) e = std::max(e, h.dense_size());
    return e;
  }

  /// True when every key this round was dense — the precondition the
  /// engines need before key-range-partitioning a parallel apply pass.
  bool all_dense() const {
    for (const auto& h : shards_)
      if (!h.spill().empty()) return false;
    return true;
  }

 private:
  void sort_spill() {
    if (spill_sorted_) return;
    for (const auto& h : shards_)
      spill_all_.insert(spill_all_.end(), h.spill().begin(), h.spill().end());
    std::sort(spill_all_.begin(), spill_all_.end());
    spill_sorted_ = true;
  }

  std::uint64_t dense_limit_;
  std::vector<KeyHistogram> shards_;
  std::vector<std::uint64_t> spill_all_;
  bool spill_sorted_ = false;
};

}  // namespace parbounds::detail
