#include "core/gsm.hpp"

#include <algorithm>

#include "util/mathx.hpp"

namespace parbounds {

const std::vector<std::vector<Word>> GsmMachine::kEmpty = {};
const std::vector<Word> GsmMachine::kEmptyCell = {};

GsmMachine::GsmMachine(GsmConfig cfg) : cfg_(cfg) {
  if (cfg_.alpha == 0 || cfg_.beta == 0 || cfg_.gamma == 0)
    throw std::invalid_argument("GSM parameters must be >= 1");
  trace_.kind = ExecutionTrace::Kind::Gsm;
}

Addr GsmMachine::alloc(std::uint64_t n) {
  const Addr base = next_base_;
  next_base_ += n;
  return base;
}

std::uint64_t GsmMachine::load_inputs(Addr base, std::span<const Word> inputs) {
  std::uint64_t cells = 0;
  for (std::size_t i = 0; i < inputs.size(); i += cfg_.gamma) {
    auto& cell = mem_[base + cells];
    const std::size_t hi = std::min(inputs.size(), i + cfg_.gamma);
    cell.assign(inputs.begin() + static_cast<std::ptrdiff_t>(i),
                inputs.begin() + static_cast<std::ptrdiff_t>(hi));
    ++cells;
  }
  return cells;
}

void GsmMachine::preload(Addr a, std::span<const Word> contents) {
  mem_[a].assign(contents.begin(), contents.end());
}

void GsmMachine::begin_phase() {
  if (in_phase_) throw ModelViolation("begin_phase inside an open phase");
  if (!started_) {
    initial_mem_ = mem_;
    started_ = true;
  }
  in_phase_ = true;
  reads_.clear();
  writes_.clear();
}

void GsmMachine::read(ProcId p, Addr a) {
  if (!in_phase_) throw ModelViolation("read outside a phase");
  reads_.push_back({p, a});
}

void GsmMachine::write(ProcId p, Addr a, Word v) {
  if (!in_phase_) throw ModelViolation("write outside a phase");
  writes_.push_back({p, a, {v}});
}

void GsmMachine::write_block(ProcId p, Addr a, std::span<const Word> vs) {
  if (!in_phase_) throw ModelViolation("write outside a phase");
  writes_.push_back({p, a, std::vector<Word>(vs.begin(), vs.end())});
}

const PhaseTrace& GsmMachine::commit_phase() {
  if (!in_phase_) throw ModelViolation("commit_phase without begin_phase");
  in_phase_ = false;

  PhaseTrace ph;
  PhaseStats& st = ph.stats;
  st.reads = reads_.size();
  st.writes = writes_.size();

  std::unordered_map<ProcId, std::uint64_t> rw_count;
  rw_count.reserve(reads_.size() + writes_.size());
  for (const auto& r : reads_) ++rw_count[r.proc];
  for (const auto& w : writes_) ++rw_count[w.proc];
  for (const auto& [p, c] : rw_count) st.m_rw = std::max(st.m_rw, c);

  std::unordered_map<Addr, std::uint64_t> cell_r, cell_w;
  for (const auto& r : reads_) ++cell_r[r.addr];
  for (const auto& w : writes_) ++cell_w[w.addr];
  for (const auto& [a, c] : cell_r) {
    if (cell_w.count(a) != 0)
      throw ModelViolation("GSM cell both read and written in one phase");
    st.kappa_r = std::max(st.kappa_r, c);
  }
  for (const auto& [a, c] : cell_w) st.kappa_w = std::max(st.kappa_w, c);

  // Big-step accounting (Section 2.2): a phase with b big-steps costs
  // mu * b; b = max(ceil(m_rw/alpha), ceil(kappa/beta)), at least 1.
  const std::uint64_t b =
      std::max<std::uint64_t>({1, ceil_div(st.m_rw, cfg_.alpha),
                               ceil_div(st.kappa(), cfg_.beta)});
  ph.cost = mu() * b;
  big_steps_ += b;
  time_ += ph.cost;

  inboxes_.clear();
  for (const auto& r : reads_) {
    auto it = mem_.find(r.addr);
    inboxes_[r.proc].push_back(it == mem_.end() ? kEmptyCell : it->second);
    if (cfg_.record_detail) ph.events.push_back({r.proc, r.addr, 0, false});
  }

  // Strong queuing: every write appends its information to the cell.
  for (const auto& w : writes_) {
    auto& cell = mem_[w.addr];
    cell.insert(cell.end(), w.values.begin(), w.values.end());
    if (cfg_.record_detail)
      ph.events.push_back(
          {w.proc, w.addr, w.values.empty() ? 0 : w.values.front(), true});
  }

  trace_.phases.push_back(std::move(ph));
  if (observer_ != nullptr)
    observer_->on_phase_committed(trace_, trace_.phases.size() - 1);
  return trace_.phases.back();
}

std::span<const std::vector<Word>> GsmMachine::inbox(ProcId p) const {
  auto it = inboxes_.find(p);
  if (it == inboxes_.end()) return kEmpty;
  return it->second;
}

std::span<const Word> GsmMachine::peek(Addr a) const {
  auto it = mem_.find(a);
  return (it == mem_.end()) ? kEmptyCell : std::span<const Word>(it->second);
}

}  // namespace parbounds
