#include "core/gsm.hpp"

#include <algorithm>
#include <chrono>

#include "core/phase_scan.hpp"
#include "obs/telemetry.hpp"
#include "util/mathx.hpp"

namespace parbounds {

const std::vector<std::vector<Word>> GsmMachine::kEmpty = {};
const std::vector<Word> GsmMachine::kEmptyCell = {};

GsmMachine::GsmMachine(GsmConfig cfg)
    : cfg_(cfg), mem_(cfg.mem_dense_limit) {
  if (cfg_.alpha == 0 || cfg_.beta == 0 || cfg_.gamma == 0)
    throw std::invalid_argument("GSM parameters must be >= 1");
  trace_.kind = ExecutionTrace::Kind::Gsm;
}

Addr GsmMachine::alloc(std::uint64_t n) {
  const Addr base = next_base_;
  next_base_ += n;
  return base;
}

std::uint64_t GsmMachine::load_inputs(Addr base, std::span<const Word> inputs) {
  std::uint64_t cells = 0;
  for (std::size_t i = 0; i < inputs.size(); i += cfg_.gamma) {
    auto& cell = mem_.slot(base + cells);
    const std::size_t hi = std::min(inputs.size(), i + cfg_.gamma);
    cell.assign(inputs.begin() + static_cast<std::ptrdiff_t>(i),
                inputs.begin() + static_cast<std::ptrdiff_t>(hi));
    ++cells;
  }
  return cells;
}

void GsmMachine::preload(Addr a, std::span<const Word> contents) {
  mem_.slot(a).assign(contents.begin(), contents.end());
}

void GsmMachine::begin_phase() {
  if (in_phase_) throw ModelViolation("begin_phase inside an open phase");
  if (!started_) {
    initial_mem_.clear();
    mem_.for_each([this](Addr a, const std::vector<Word>& cell) {
      initial_mem_.emplace(a, cell);
    });
    started_ = true;
  }
  in_phase_ = true;
  reads_.clear();
  writes_.clear();
}

void GsmMachine::read(ProcId p, Addr a) {
  if (!in_phase_) throw ModelViolation("read outside a phase");
  reads_.push_back({p, a});
}

void GsmMachine::write(ProcId p, Addr a, Word v) {
  if (!in_phase_) throw ModelViolation("write outside a phase");
  writes_.push_back({p, a, {v}});
}

void GsmMachine::write_block(ProcId p, Addr a, std::span<const Word> vs) {
  if (!in_phase_) throw ModelViolation("write outside a phase");
  writes_.push_back({p, a, std::vector<Word>(vs.begin(), vs.end())});
}

const PhaseTrace& GsmMachine::commit_phase() {
  if (!in_phase_) throw ModelViolation("commit_phase without begin_phase");
  in_phase_ = false;

  PhaseTrace ph;
  PhaseStats& st = ph.stats;
  st.reads = reads_.size();
  st.writes = writes_.size();

  // The GSM charges reads and writes jointly per processor. Large
  // phases take the sharded scans (path picked by size alone; see
  // phase_scan.hpp for the bit-identical merge argument).
  const std::uint64_t nr = reads_.size();
  const bool sharded =
      nr + writes_.size() >= detail::commit_shard_min_requests();
  bool clash = false;
  if (sharded) {
    ph.commit_shards = detail::kCommitShards;
    sproc_.scan(nr + writes_.size(), [&](std::uint64_t i) {
      return i < nr ? reads_[i].proc : writes_[i - nr].proc;
    });
    sraddr_.scan(nr, [this](std::uint64_t i) { return reads_[i].addr; });
    swaddr_.scan(writes_.size(),
                 [this](std::uint64_t i) { return writes_[i].addr; });
    // DETLINT(det.wall-clock): merge_ns telemetry exception (docs/PERF.md)
    const auto merge_t0 = std::chrono::steady_clock::now();
    st.m_rw = std::max(st.m_rw, sproc_.max_run());
    st.kappa_r = std::max(st.kappa_r, sraddr_.max_run());
    st.kappa_w = std::max(st.kappa_w, swaddr_.max_run());
    clash = detail::ShardedScan::min_common(sraddr_, swaddr_).has_value();
    ph.commit_merge_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            // DETLINT(det.wall-clock): merge_ns telemetry exception (docs/PERF.md)
            std::chrono::steady_clock::now() - merge_t0)
            .count());
  } else {
    proc_hist_.reset();
    for (const auto& r : reads_) proc_hist_.add(r.proc);
    for (const auto& w : writes_) proc_hist_.add(w.proc);
    st.m_rw = std::max(st.m_rw, proc_hist_.max_run());

    // Per-cell contention and the read-xor-write queue rule: dense
    // addresses through flat histograms (a write probes the read counter
    // directly), spilled addresses through a sorted two-pointer pass.
    raddr_hist_.reset();
    for (const auto& r : reads_) raddr_hist_.add(r.addr);
    st.kappa_r = std::max(st.kappa_r, raddr_hist_.max_run());
    waddr_hist_.reset();
    for (const auto& w : writes_) {
      clash = clash || raddr_hist_.count(w.addr) > 0;
      waddr_hist_.add(w.addr);
    }
    st.kappa_w = std::max(st.kappa_w, waddr_hist_.max_run());
    clash = clash || detail::first_common(raddr_hist_.spill(),
                                          waddr_hist_.spill())
                         .has_value();
  }
  if (clash)
    throw ModelViolation("GSM cell both read and written in one phase");

  // Big-step accounting (Section 2.2): a phase with b big-steps costs
  // mu * b; b = max(ceil(m_rw/alpha), ceil(kappa/beta)), at least 1.
  const std::uint64_t b =
      std::max<std::uint64_t>({1, ceil_div(st.m_rw, cfg_.alpha),
                               ceil_div(st.kappa(), cfg_.beta)});
  ph.cost = mu() * b;
  big_steps_ += b;
  time_ += ph.cost;

  inboxes_.begin_phase();
  for (const auto& r : reads_) {
    const std::vector<Word>* cell = mem_.find(r.addr);
    inboxes_.box(r.proc).push_back(cell == nullptr ? kEmptyCell : *cell);
    if (cfg_.record_detail) ph.events.push_back({r.proc, r.addr, 0, false});
  }

  // Strong queuing: every write appends its information to the cell.
  for (const auto& w : writes_) {
    auto& cell = mem_.slot(w.addr);
    cell.insert(cell.end(), w.values.begin(), w.values.end());
    if (cfg_.record_detail)
      ph.events.push_back(
          {w.proc, w.addr, w.values.empty() ? 0 : w.values.front(), true});
  }

  trace_.phases.push_back(std::move(ph));
  if (observer_ != nullptr)
    observer_->on_phase_committed(trace_, trace_.phases.size() - 1);
  obs::phase_hook(trace_, trace_.phases.size() - 1);
  return trace_.phases.back();
}

std::span<const std::vector<Word>> GsmMachine::inbox(ProcId p) const {
  const auto* box = inboxes_.find(p);
  if (box == nullptr) return kEmpty;
  return *box;
}

std::span<const Word> GsmMachine::peek(Addr a) const {
  const std::vector<Word>* cell = mem_.find(a);
  return (cell == nullptr) ? kEmptyCell : std::span<const Word>(*cell);
}

}  // namespace parbounds
