#pragma once
// Cost policies for the shared-memory models of Section 2.1.
//
// A QSM phase with maximum local computation m_op, maximum per-processor
// read/write count m_rw (>= 1 by definition) and maximum contention kappa
// (>= 1 by definition) costs:
//
//   QSM    : max(m_op, g * m_rw, kappa)            [Section 2.1 (1)]
//   s-QSM  : max(m_op, g * m_rw, g * kappa)        [Section 2.1 (2)]
//   QRQW   : QSM with g = 1                        [Section 2.1 (1)]
//
// Two auxiliary policies support the paper's side remarks and our
// ablations:
//
//   QsmCrFree : QSM, but concurrent *reads* are unit time ("even if
//               unit-time concurrent reads are allowed", Theorem 3.1 and
//               the Theta entry for Parity in Table 1). Write contention is
//               still charged.
//   CrcwLike  : contention entirely free (both directions); used only by
//               the contention ablation bench to show what queue charging
//               buys relative to a CRCW-style accounting.

#include <algorithm>
#include <cstdint>

namespace parbounds {

// A further instance from the paper (Claim 2.2): the QSM(g, d) of
// [Ramachandran 21], with a gap g at processors and a separate gap d per
// access at memory:
//
//   QSM(g,d) : max(m_op, g * m_rw, d * kappa)
//
// QSM = QSM(g, 1); s-QSM = QSM(g, g); QRQW PRAM = QSM(1, 1).
// CostModel::Erew completes the spectrum the paper situates the QRQW in
// ("intermediate between the EREW and CRCW rules", Section 1): under
// Erew any contention above 1 is a ModelViolation, so EREW-legal
// algorithms (bitonic sort, fan-in-2 trees) run and queue-exploiting
// ones (funnels, broadcasts) are rejected by the engine.
enum class CostModel : std::uint8_t {
  Qsm,
  SQsm,
  QsmCrFree,
  CrcwLike,
  QsmGd,
  Erew,
};

const char* cost_model_name(CostModel m);

/// Raw per-phase quantities measured by the engine.
struct PhaseStats {
  std::uint64_t m_op = 0;      ///< max_i c_i (local RAM operations)
  std::uint64_t m_rw = 1;      ///< max(1, max_i max(r_i, w_i))
  std::uint64_t kappa_r = 1;   ///< max over cells of #readers (>= 1)
  std::uint64_t kappa_w = 1;   ///< max over cells of #writers (>= 1)
  std::uint64_t reads = 0;     ///< total read requests in the phase
  std::uint64_t writes = 0;    ///< total write requests in the phase
  std::uint64_t ops = 0;       ///< total local operations in the phase

  std::uint64_t kappa() const { return std::max(kappa_r, kappa_w); }
};

/// Charge a phase under the given policy with gap parameter g (and memory
/// gap d, used only by CostModel::QsmGd).
std::uint64_t phase_cost(CostModel model, std::uint64_t g,
                         const PhaseStats& s, std::uint64_t d = 1);

}  // namespace parbounds
