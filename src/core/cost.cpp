#include "core/cost.hpp"

namespace parbounds {

const char* cost_model_name(CostModel m) {
  switch (m) {
    case CostModel::Qsm:
      return "QSM";
    case CostModel::SQsm:
      return "s-QSM";
    case CostModel::QsmCrFree:
      return "QSM+cr";
    case CostModel::CrcwLike:
      return "CRCW-like";
    case CostModel::QsmGd:
      return "QSM(g,d)";
    case CostModel::Erew:
      return "EREW";
  }
  return "?";
}

std::uint64_t phase_cost(CostModel model, std::uint64_t g,
                         const PhaseStats& s, std::uint64_t d) {
  const std::uint64_t comm = g * s.m_rw;
  switch (model) {
    case CostModel::Qsm:
      return std::max({s.m_op, comm, s.kappa()});
    case CostModel::SQsm:
      return std::max({s.m_op, comm, g * s.kappa()});
    case CostModel::QsmCrFree:
      // Concurrent reads are unit time: only write contention queues.
      return std::max({s.m_op, comm, s.kappa_w});
    case CostModel::CrcwLike:
      return std::max(s.m_op, comm);
    case CostModel::QsmGd:
      return std::max({s.m_op, comm, d * s.kappa()});
    case CostModel::Erew:
      // Exclusive access enforced at commit; kappa is always 1 here.
      return std::max(s.m_op, comm);
  }
  return 0;
}

}  // namespace parbounds
