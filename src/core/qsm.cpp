#include "core/qsm.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "core/phase_scan.hpp"
#include "obs/telemetry.hpp"
#include "runtime/parallel_for.hpp"

namespace parbounds {

const std::vector<Word> QsmMachine::kEmptyInbox = {};

QsmMachine::QsmMachine(QsmConfig cfg)
    : cfg_(cfg), rng_(cfg.seed), mem_(cfg.mem_dense_limit) {
  if (cfg_.g == 0) throw std::invalid_argument("QSM gap g must be >= 1");
  if (cfg_.d == 0) throw std::invalid_argument("QSM memory gap d must be >= 1");
  switch (cfg_.model) {
    case CostModel::SQsm:
      trace_.kind = ExecutionTrace::Kind::SQsm;
      break;
    case CostModel::QsmGd:
      trace_.kind = ExecutionTrace::Kind::QsmGd;
      break;
    default:
      trace_.kind = ExecutionTrace::Kind::Qsm;
  }
  trace_.g = cfg_.g;
  trace_.d = cfg_.d;
}

Addr QsmMachine::alloc(std::uint64_t n) {
  const Addr base = next_base_;
  next_base_ += n;
  return base;
}

void QsmMachine::preload(Addr base, std::span<const Word> values) {
  for (std::size_t i = 0; i < values.size(); ++i)
    if (values[i] != 0) mem_.slot(base + i) = values[i];
}

void QsmMachine::preload(Addr addr, Word value) { mem_.slot(addr) = value; }

void QsmMachine::begin_phase() {
  if (in_phase_) throw ModelViolation("begin_phase inside an open phase");
  in_phase_ = true;
  reads_.clear();
  writes_.clear();
  locals_.clear();
}

void QsmMachine::read(ProcId p, Addr a) {
  if (!in_phase_) throw ModelViolation("read outside a phase");
  reads_.push_back({p, a});
}

void QsmMachine::write(ProcId p, Addr a, Word v) {
  if (!in_phase_) throw ModelViolation("write outside a phase");
  writes_.push_back({p, a, v});
}

void QsmMachine::local(ProcId p, std::uint64_t ops) {
  if (!in_phase_) throw ModelViolation("local outside a phase");
  locals_.push_back({p, ops});
}

const PhaseTrace& QsmMachine::commit_phase() {
  if (!in_phase_) throw ModelViolation("commit_phase without begin_phase");
  in_phase_ = false;

  PhaseTrace ph;
  PhaseStats& st = ph.stats;
  st.reads = reads_.size();
  st.writes = writes_.size();

  // Path choice is a pure function of the phase size, never of the
  // thread count: at or above the floor the sharded scans run (inline
  // on a 1-thread pool, over the same fixed shard boundaries), below it
  // the serial histograms do. Aggregates are bit-identical either way.
  const bool sharded =
      reads_.size() + writes_.size() >= detail::commit_shard_min_requests();
  std::optional<Addr> clash;
  if (sharded) {
    ph.commit_shards = detail::kCommitShards;
    // Per-processor r_i / w_i, charged as separate maxima (a processor's
    // reads and writes overlap in the pipeline, they do not add).
    sproc_r_.scan(reads_.size(),
                  [this](std::uint64_t i) { return reads_[i].proc; });
    sproc_w_.scan(writes_.size(),
                  [this](std::uint64_t i) { return writes_[i].proc; });
    sraddr_.scan(reads_.size(),
                 [this](std::uint64_t i) { return reads_[i].addr; });
    swaddr_.scan(writes_.size(),
                 [this](std::uint64_t i) { return writes_[i].addr; });
    // DETLINT(det.wall-clock): merge_ns telemetry exception (docs/PERF.md)
    const auto merge_t0 = std::chrono::steady_clock::now();
    st.m_rw = std::max({st.m_rw, sproc_r_.max_run(), sproc_w_.max_run()});
    st.kappa_r = std::max(st.kappa_r, sraddr_.max_run());
    st.kappa_w = std::max(st.kappa_w, swaddr_.max_run());
    clash = detail::ShardedScan::min_common(sraddr_, swaddr_);
    ph.commit_merge_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            // DETLINT(det.wall-clock): merge_ns telemetry exception (docs/PERF.md)
            std::chrono::steady_clock::now() - merge_t0)
            .count());
  } else {
    // Per-processor r_i / w_i via one proc-keyed histogram used twice.
    // reset() leads each use so a phase aborted by a violation cannot
    // leak counts into the next one.
    proc_hist_.reset();
    for (const auto& r : reads_) proc_hist_.add(r.proc);
    st.m_rw = std::max(st.m_rw, proc_hist_.max_run());
    proc_hist_.reset();
    for (const auto& w : writes_) proc_hist_.add(w.proc);
    st.m_rw = std::max(st.m_rw, proc_hist_.max_run());

    // Per-cell contention and the queue rule (reads XOR writes per
    // cell). Dense addresses are counted in flat histograms; a write at
    // a dense address probes the read counter directly, and the (rare)
    // spilled addresses are cross-checked by a sorted two-pointer pass.
    // The reported clash is the smallest conflicting address either
    // way, so the violation stays deterministic.
    raddr_hist_.reset();
    for (const auto& r : reads_) raddr_hist_.add(r.addr);
    st.kappa_r = std::max(st.kappa_r, raddr_hist_.max_run());
    waddr_hist_.reset();
    for (const auto& w : writes_) {
      if (raddr_hist_.count(w.addr) > 0 && (!clash || w.addr < *clash))
        clash = w.addr;
      waddr_hist_.add(w.addr);
    }
    st.kappa_w = std::max(st.kappa_w, waddr_hist_.max_run());
    if (const auto spill_clash =
            detail::first_common(raddr_hist_.spill(), waddr_hist_.spill()))
      if (!clash || *spill_clash < *clash) clash = *spill_clash;
  }

  // Per-processor c_i (weighted by ops per request).
  local_scratch_.clear();
  for (const auto& l : locals_) local_scratch_.push_back({l.proc, l.ops});
  const auto locals = detail::sort_max_run_sum(local_scratch_);
  st.m_op = std::max(st.m_op, locals.max_run);
  st.ops += locals.total;

  if (clash)
    throw ModelViolation("cell " + std::to_string(*clash) +
                         " both read and written in one phase");

  if (cfg_.model == CostModel::Erew && st.kappa() > 1)
    throw ModelViolation("EREW: concurrent access (contention " +
                         std::to_string(st.kappa()) + ")");

  ph.cost = phase_cost(cfg_.model, cfg_.g, st, cfg_.d);
  time_ += ph.cost;

  // Deliver reads: values are the cell contents at the start of the phase
  // (writes below have not been applied yet), in issue order per processor.
  // The parallel path partitions *processors* into ranges — every shard
  // scans the full read stream but appends only to its own range's
  // boxes, so each box still receives its values in issue order and the
  // delivered state is identical to the serial loop. Strategy (not
  // results) depends on the pool size: a 1-thread pool takes the serial
  // loop rather than paying kCommitShards scans of the stream.
  auto& pool = runtime::ParallelFor::pool();
  const bool par_apply = sharded && !cfg_.record_detail && pool.threads() > 1;
  inboxes_.begin_phase();
  bool delivered = false;
  if (par_apply && sproc_r_.all_dense() &&
      inboxes_.reserve_dense(sproc_r_.dense_extent())) {
    pool.for_shards(sproc_r_.dense_extent(), detail::kCommitShards,
                    [&](unsigned s, std::uint64_t plo, std::uint64_t phi) {
                      obs::Span span(obs::process_tracer(), "commit.shard", s);
                      for (const auto& r : reads_) {
                        if (r.proc < plo || r.proc >= phi) continue;
                        const Word* cell = mem_.find(r.addr);
                        inboxes_.box(r.proc).push_back(cell ? *cell : 0);
                      }
                    });
    delivered = true;
  }
  if (!delivered) {
    for (const auto& r : reads_) {
      const Word* cell = mem_.find(r.addr);
      const Word v = (cell == nullptr) ? 0 : *cell;
      inboxes_.box(r.proc).push_back(v);
      if (cfg_.record_detail) ph.events.push_back({r.proc, r.addr, v, false});
    }
  }

  // Apply writes. With multiple writers to one cell, an arbitrary write
  // succeeds: LastQueued keeps the final request's value; Random picks a
  // uniform winner per cell, drawing in ascending cell order so the
  // winner sequence is a pure function of the seed (an unordered_map
  // walk here would feed rng_ in library-specific order).
  if (cfg_.writes == WriteResolution::LastQueued) {
    // Parallel path: address ranges. A cell's writes are all applied by
    // the one shard owning its range, in issue order — the surviving
    // value is the last queued write, exactly as in the serial loop.
    bool applied = false;
    if (par_apply && swaddr_.all_dense() &&
        mem_.reserve_dense(swaddr_.dense_extent())) {
      pool.for_shards(swaddr_.dense_extent(), detail::kCommitShards,
                      [&](unsigned s, std::uint64_t alo, std::uint64_t ahi) {
                        obs::Span span(obs::process_tracer(), "commit.shard",
                                       s);
                        for (const auto& w : writes_)
                          if (w.addr >= alo && w.addr < ahi)
                            mem_.slot(w.addr) = w.value;
                      });
      applied = true;
    }
    if (!applied) {
      for (const auto& w : writes_) {
        mem_.slot(w.addr) = w.value;
        if (cfg_.record_detail)
          ph.events.push_back({w.proc, w.addr, w.value, true});
      }
    }
  } else {
    // Random resolution draws rng_ in ascending cell order — the draw
    // sequence is inherently serial, but the dominant cost (sorting the
    // write groups) shards cleanly: (addr, issue index) pairs are
    // distinct, so parallel_sort is byte-identical to std::sort.
    wgroup_scratch_.clear();
    for (std::uint32_t i = 0; i < writes_.size(); ++i)
      wgroup_scratch_.push_back({writes_[i].addr, i});
    runtime::parallel_sort(wgroup_scratch_, pool);
    for (std::size_t lo = 0; lo < wgroup_scratch_.size();) {
      std::size_t hi = lo;
      while (hi < wgroup_scratch_.size() &&
             wgroup_scratch_[hi].first == wgroup_scratch_[lo].first)
        ++hi;
      const auto k =
          lo + static_cast<std::size_t>(rng_.next_below(hi - lo));
      const WriteReq& winner = writes_[wgroup_scratch_[k].second];
      mem_.slot(winner.addr) = winner.value;
      if (cfg_.record_detail)
        for (std::size_t j = lo; j < hi; ++j) {
          const WriteReq& w = writes_[wgroup_scratch_[j].second];
          ph.events.push_back({w.proc, w.addr, w.value, true});
        }
      lo = hi;
    }
  }

  trace_.phases.push_back(std::move(ph));
  if (observer_ != nullptr)
    observer_->on_phase_committed(trace_, trace_.phases.size() - 1);
  obs::phase_hook(trace_, trace_.phases.size() - 1);
  return trace_.phases.back();
}

std::span<const Word> QsmMachine::inbox(ProcId p) const {
  const std::vector<Word>* box = inboxes_.find(p);
  return (box == nullptr) ? kEmptyInbox : *box;
}

Word QsmMachine::peek(Addr a) const {
  const Word* cell = mem_.find(a);
  return (cell == nullptr) ? 0 : *cell;
}

}  // namespace parbounds
