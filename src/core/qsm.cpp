#include "core/qsm.hpp"

#include <algorithm>

namespace parbounds {

const std::vector<Word> QsmMachine::kEmptyInbox = {};

QsmMachine::QsmMachine(QsmConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.g == 0) throw std::invalid_argument("QSM gap g must be >= 1");
  if (cfg_.d == 0) throw std::invalid_argument("QSM memory gap d must be >= 1");
  switch (cfg_.model) {
    case CostModel::SQsm:
      trace_.kind = ExecutionTrace::Kind::SQsm;
      break;
    case CostModel::QsmGd:
      trace_.kind = ExecutionTrace::Kind::QsmGd;
      break;
    default:
      trace_.kind = ExecutionTrace::Kind::Qsm;
  }
  trace_.g = cfg_.g;
  trace_.d = cfg_.d;
}

Addr QsmMachine::alloc(std::uint64_t n) {
  const Addr base = next_base_;
  next_base_ += n;
  return base;
}

void QsmMachine::preload(Addr base, std::span<const Word> values) {
  for (std::size_t i = 0; i < values.size(); ++i)
    if (values[i] != 0) mem_[base + i] = values[i];
}

void QsmMachine::preload(Addr addr, Word value) { mem_[addr] = value; }

void QsmMachine::begin_phase() {
  if (in_phase_) throw ModelViolation("begin_phase inside an open phase");
  in_phase_ = true;
  reads_.clear();
  writes_.clear();
  locals_.clear();
}

void QsmMachine::read(ProcId p, Addr a) {
  if (!in_phase_) throw ModelViolation("read outside a phase");
  reads_.push_back({p, a});
}

void QsmMachine::write(ProcId p, Addr a, Word v) {
  if (!in_phase_) throw ModelViolation("write outside a phase");
  writes_.push_back({p, a, v});
}

void QsmMachine::local(ProcId p, std::uint64_t ops) {
  if (!in_phase_) throw ModelViolation("local outside a phase");
  locals_.push_back({p, ops});
}

const PhaseTrace& QsmMachine::commit_phase() {
  if (!in_phase_) throw ModelViolation("commit_phase without begin_phase");
  in_phase_ = false;

  PhaseTrace ph;
  PhaseStats& st = ph.stats;
  st.reads = reads_.size();
  st.writes = writes_.size();

  // Per-processor r_i, w_i, c_i.
  std::unordered_map<ProcId, std::uint64_t> r_count, w_count, c_count;
  r_count.reserve(reads_.size());
  w_count.reserve(writes_.size());
  for (const auto& r : reads_) ++r_count[r.proc];
  for (const auto& w : writes_) ++w_count[w.proc];
  for (const auto& l : locals_) c_count[l.proc] += l.ops;
  for (const auto& [p, c] : r_count) st.m_rw = std::max(st.m_rw, c);
  for (const auto& [p, c] : w_count) st.m_rw = std::max(st.m_rw, c);
  for (const auto& [p, c] : c_count) {
    st.m_op = std::max(st.m_op, c);
    st.ops += c;
  }

  // Per-cell contention and the queue rule (reads XOR writes per cell).
  std::unordered_map<Addr, std::uint64_t> cell_r, cell_w;
  cell_r.reserve(reads_.size());
  cell_w.reserve(writes_.size());
  for (const auto& r : reads_) ++cell_r[r.addr];
  for (const auto& w : writes_) ++cell_w[w.addr];
  for (const auto& [a, c] : cell_r) {
    if (cell_w.count(a) != 0)
      throw ModelViolation("cell " + std::to_string(a) +
                           " both read and written in one phase");
    st.kappa_r = std::max(st.kappa_r, c);
  }
  for (const auto& [a, c] : cell_w) st.kappa_w = std::max(st.kappa_w, c);

  if (cfg_.model == CostModel::Erew && st.kappa() > 1)
    throw ModelViolation("EREW: concurrent access (contention " +
                         std::to_string(st.kappa()) + ")");

  ph.cost = phase_cost(cfg_.model, cfg_.g, st, cfg_.d);
  time_ += ph.cost;

  // Deliver reads: values are the cell contents at the start of the phase
  // (writes below have not been applied yet), in issue order per processor.
  inboxes_.clear();
  for (const auto& r : reads_) {
    auto it = mem_.find(r.addr);
    const Word v = (it == mem_.end()) ? 0 : it->second;
    inboxes_[r.proc].push_back(v);
    if (cfg_.record_detail) ph.events.push_back({r.proc, r.addr, v, false});
  }

  // Apply writes. With multiple writers to one cell, an arbitrary write
  // succeeds: LastQueued keeps the final requests order; Random shuffles
  // winners with the machine's seeded generator.
  if (cfg_.writes == WriteResolution::LastQueued) {
    for (const auto& w : writes_) {
      mem_[w.addr] = w.value;
      if (cfg_.record_detail)
        ph.events.push_back({w.proc, w.addr, w.value, true});
    }
  } else {
    // Group writers per cell, pick a uniform winner.
    std::unordered_map<Addr, std::vector<const WriteReq*>> by_cell;
    for (const auto& w : writes_) by_cell[w.addr].push_back(&w);
    for (auto& [a, ws] : by_cell) {
      const auto k = static_cast<std::size_t>(rng_.next_below(ws.size()));
      mem_[a] = ws[k]->value;
      if (cfg_.record_detail)
        for (const auto* w : ws)
          ph.events.push_back({w->proc, w->addr, w->value, true});
    }
  }

  trace_.phases.push_back(std::move(ph));
  if (observer_ != nullptr)
    observer_->on_phase_committed(trace_, trace_.phases.size() - 1);
  return trace_.phases.back();
}

std::span<const Word> QsmMachine::inbox(ProcId p) const {
  auto it = inboxes_.find(p);
  if (it == inboxes_.end()) return kEmptyInbox;
  return it->second;
}

Word QsmMachine::peek(Addr a) const {
  auto it = mem_.find(a);
  return (it == mem_.end()) ? 0 : it->second;
}

}  // namespace parbounds
