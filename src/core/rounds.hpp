#pragma once
// Round accounting, Section 2.3.
//
// A *round* in a computation with p processors on an n-element input is:
//   * QSM / s-QSM : a phase taking O(g*n/p) time;
//   * BSP         : a superstep routing an O(n/p)-relation and performing
//                   O(g*n/p + L) local computation;
//   * GSM         : a phase taking O(mu*n/(lambda*p)) time (p <= n,
//                   gamma <= n/p).
//
// A p-processor QSM/s-QSM algorithm performs *linear work* when its
// processor-time product is O(g*n); on a GSM, O(mu*n/lambda). Any
// linear-work algorithm must compute in rounds, and an r-round computation
// performs at most O(r*g*n) work (O(r*(g*n + L*p)) on BSP).
//
// The auditor walks an ExecutionTrace and checks every phase against the
// applicable budget with an explicit slack constant (the constant hidden
// in the O(): we default to 4 and report the worst observed ratio so
// benches can print how tight each algorithm actually is).

#include <cstdint>

#include "core/trace.hpp"

namespace parbounds {

struct RoundAudit {
  std::uint64_t rounds = 0;          ///< number of phases / supersteps
  std::uint64_t violations = 0;      ///< phases exceeding the round budget
  std::uint64_t budget = 0;          ///< per-phase cost budget used
  std::uint64_t max_phase_cost = 0;  ///< worst phase observed
  double worst_ratio = 0.0;          ///< max phase cost / (budget/slack)
  std::uint64_t total_work = 0;      ///< p * total cost

  bool all_rounds() const { return violations == 0; }
};

/// QSM / s-QSM: every phase must cost <= slack * g * n / p.
RoundAudit audit_rounds_qsm(const ExecutionTrace& t, std::uint64_t n,
                            std::uint64_t p, std::uint64_t slack = 4);

/// BSP: every superstep must route h <= slack * n/p and do local work
/// <= slack * (g*n/p + L).
RoundAudit audit_rounds_bsp(const ExecutionTrace& t, std::uint64_t n,
                            std::uint64_t p, std::uint64_t slack = 4);

/// GSM: every phase must cost <= slack * mu * n / (lambda * p).
RoundAudit audit_rounds_gsm(const ExecutionTrace& t, std::uint64_t n,
                            std::uint64_t p, std::uint64_t alpha,
                            std::uint64_t beta, std::uint64_t slack = 4);

/// GSM(h), Section 6.3's relaxed round: a phase taking O(mu*h/lambda)
/// time regardless of the processor count. Used by the Theorem 6.3 LAC
/// round bound.
RoundAudit audit_rounds_gsm_h(const ExecutionTrace& t, std::uint64_t h,
                              std::uint64_t alpha, std::uint64_t beta,
                              std::uint64_t slack = 4);

/// Linear-work check: processor-time product <= slack * g * n (QSM/s-QSM).
bool is_linear_work_qsm(const ExecutionTrace& t, std::uint64_t n,
                        std::uint64_t p, std::uint64_t slack = 4);

}  // namespace parbounds
