#include "core/mapping.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/mathx.hpp"

namespace parbounds {

std::uint64_t gsm_phase_cost(const PhaseStats& st, std::uint64_t alpha,
                             std::uint64_t beta) {
  const std::uint64_t mu = std::max(alpha, beta);
  const std::uint64_t b = std::max<std::uint64_t>(
      {1, ceil_div(st.m_rw, alpha), ceil_div(st.kappa(), beta)});
  return mu * b;
}

std::uint64_t gsm_replay_cost(const ExecutionTrace& t, std::uint64_t alpha,
                              std::uint64_t beta) {
  std::uint64_t total = 0;
  for (const auto& ph : t.phases) total += gsm_phase_cost(ph.stats, alpha, beta);
  return total;
}

MappingReport check_claim21(const ExecutionTrace& t) {
  MappingReport r;
  r.original_cost = t.total_cost();
  switch (t.kind) {
    case ExecutionTrace::Kind::Qsm:
      r.gsm_cost = gsm_replay_cost(t, 1, t.g);
      r.factor = 1;
      break;
    case ExecutionTrace::Kind::SQsm:
      r.gsm_cost = gsm_replay_cost(t, 1, 1);
      r.factor = t.g;
      break;
    case ExecutionTrace::Kind::Bsp: {
      const std::uint64_t lg = std::max<std::uint64_t>(1, t.L / t.g);
      r.gsm_cost = gsm_replay_cost(t, lg, lg);
      r.factor = t.g;
      break;
    }
    case ExecutionTrace::Kind::QsmGd:
      return check_claim22(t);
    case ExecutionTrace::Kind::Gsm:
      throw std::invalid_argument("check_claim21: trace is already GSM");
  }
  r.ratio = r.original_cost == 0
                ? 0.0
                : static_cast<double>(r.factor) *
                      static_cast<double>(r.gsm_cost) /
                      static_cast<double>(r.original_cost);
  return r;
}

MappingReport check_claim22(const ExecutionTrace& t) {
  if (t.kind != ExecutionTrace::Kind::QsmGd)
    throw std::invalid_argument("check_claim22 needs a QSM(g,d) trace");
  MappingReport r;
  r.original_cost = t.total_cost();
  if (t.g >= t.d) {
    // Item 1: T_{g>d-QSM} = Omega(d * T_GSM(n, 1, g/d, 1)).
    r.gsm_cost = gsm_replay_cost(t, 1, std::max<std::uint64_t>(1, t.g / t.d));
    r.factor = t.d;
  } else {
    // Item 2: T_{d>g-QSM} = Omega(g * T_GSM(n, d/g, 1, 1)).
    r.gsm_cost = gsm_replay_cost(t, std::max<std::uint64_t>(1, t.d / t.g), 1);
    r.factor = t.g;
  }
  r.ratio = r.original_cost == 0
                ? 0.0
                : static_cast<double>(r.factor) *
                      static_cast<double>(r.gsm_cost) /
                      static_cast<double>(r.original_cost);
  return r;
}

}  // namespace parbounds
